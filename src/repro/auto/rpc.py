"""Length-prefixed socket protocol for the plan server.

Wire format (all little-endian): each message is ``[u32 length][pickle
payload]`` — the same framing discipline as the shared-memory memo's
record log (:mod:`repro.auto.sharedmemo`), lifted onto a stream socket.
A request and its reply are both plain picklable objects (dicts by
convention, with a ``"kind"`` discriminator); the server answers every
request on the same connection, in order, so a connection is a simple
synchronous request/reply channel and one client can hold several
connections for parallelism (the ``remote`` rollout backend does).

Payloads are **pickle**, which is what lets traced :class:`Function`
objects, meshes and portable env states ride along unchanged — exactly
the worker-transport contract of the ``process`` backend, across a socket
instead of a fork.  Pickle is not safe against hostile peers: the plan
server is a *trusted-cluster* daemon (bind it to localhost or a private
network, as the paper's target deployment does), not an internet service.

Errors cross the wire as ``{"ok": False, "error": ...}`` replies and are
re-raised client-side as :class:`RemoteError`; transport-level failures
surface as :class:`ConnectionError`/``OSError`` so callers can fall back
to local search (see ``mcts_search(plan_server=...)``).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Callable, Optional, Tuple

_FRAME = struct.Struct("<I")

#: Upper bound on one frame; a guard against garbage on the port, not a
#: protocol limit (paper-scale functions pickle to a few MB at most).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Protocol version, checked by the server on every request.
PROTOCOL = 1


class RemoteError(RuntimeError):
    """The server processed the request and reported a failure."""


def parse_address(address) -> Tuple[str, int]:
    """``"host:port"`` (or ``(host, port)``) -> ``(host, port)``."""
    if isinstance(address, (tuple, list)):
        host, port = address
        return str(host), int(port)
    host, _, port = str(address).rpartition(":")
    if not host or not port:
        raise ValueError(
            f"plan server address {address!r} is not 'host:port'"
        )
    return host, int(port)


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


# -- framing -----------------------------------------------------------------------


def send_msg(sock: socket.socket, payload) -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_FRAME.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket):
    header = _recv_exact(sock, _FRAME.size)
    (length,) = _FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized frame ({length} bytes)")
    return pickle.loads(_recv_exact(sock, length))


# -- client ------------------------------------------------------------------------


class Connection:
    """One synchronous request/reply channel to the server."""

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def request(self, payload: dict):
        """Send one request; return the reply's ``"value"`` field.

        Raises :class:`RemoteError` for server-reported failures and
        ``ConnectionError``/``OSError`` for transport failures."""
        message = dict(payload)
        message.setdefault("protocol", PROTOCOL)
        send_msg(self._sock, message)
        reply = recv_msg(self._sock)
        if not isinstance(reply, dict) or not reply.get("ok"):
            error = reply.get("error") if isinstance(reply, dict) \
                else repr(reply)
            raise RemoteError(str(error))
        return reply.get("value")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(address, timeout: Optional[float] = 30.0) -> Connection:
    """Open a connection to ``address`` (``"host:port"`` or tuple).

    ``timeout`` bounds the TCP connect *and* every subsequent
    request/reply round trip; raises ``OSError`` when the server is
    unreachable — the signal the client-side fallback keys on."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return Connection(sock)


# -- server loop -------------------------------------------------------------------


class RpcServer:
    """A thread-per-connection frame server.

    ``handler_factory()`` is called once per accepted connection and must
    return a ``callable(message) -> value``; the return value is wrapped
    in an ``{"ok": True, "value": ...}`` reply, exceptions in an
    ``{"ok": False, "error": ...}`` reply.  Per-connection handlers may
    carry state (the plan server's evaluator sessions do) and may expose
    a ``close()`` hook, invoked when the connection ends.
    """

    def __init__(self, handler_factory: Callable[[], Callable],
                 host: str = "127.0.0.1", port: int = 0):
        self._handler_factory = handler_factory
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self._threads = []
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    def start(self) -> None:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="partir-rpc-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (daemon main)."""
        self._accept_loop()

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._sock.close()
        except OSError:
            pass
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # socket closed by stop()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="partir-rpc-conn", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        handler = self._handler_factory()
        try:
            while not self._stopping.is_set():
                try:
                    message = recv_msg(conn)
                except (ConnectionError, OSError, EOFError,
                        pickle.UnpicklingError):
                    return
                try:
                    value = handler(message)
                    reply = {"ok": True, "value": value}
                except Exception as exc:  # surface, never kill the server
                    reply = {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                try:
                    send_msg(conn, reply)
                except (ConnectionError, OSError):
                    return
        finally:
            close = getattr(handler, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass
            try:
                conn.close()
            except OSError:
                pass
