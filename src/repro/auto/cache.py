"""The transposition table: in-memory + append-only on-disk persistence.

Evaluation is a pure function of the canonical action set (given the
function, its initial shardings, the mesh and the device), so scored sets
can be reused not just within one search but across *searches*: repeated
``partir_jit``/``AutomaticPartition`` calls over the same traced function
warm-start from everything earlier calls learned.

The log carries three record types:

* **cost records** ``{"k": [[kind, index, dim, axis], ...], "c": cost}`` —
  one per first-scored canonical action set (exact-cost reuse),
* **prior records** ``{"g": <group key>, "n": visits, "t": total}`` — one
  per search per action group touched (see
  :func:`repro.auto.evaluator.action_group_key`): the *tree* statistics a
  later search seeds its UCT expansion with.  Records for the same group
  accumulate across searches (visits and totals sum on load), so the
  append-only discipline extends to tree reuse: each search appends only
  its own delta, and
* **probe records** ``{"pa": [kind, index, dim, axis], "ps": digest}`` —
  one per candidate action the condenser (:mod:`repro.auto.prune`) has
  probed: the action's propagation-fixed-point digest, i.e. its
  equivalence-class label.  A probe's result is a pure function of the
  fingerprinted context, so the first record for an action is final; warm
  runs (and the plan server) bucket straight from the log and skip the
  probes.

The on-disk format is deliberately **write-lean** (in the spirit of
append-optimized structures for asymmetric memories): one JSON record per
line, appended once, never rewritten.  A cache *hit* touches no bytes on
disk; re-running a fully-warm search appends at most its prior deltas.
Reloading replays the log (last cost record wins and prior records sum, so
a crashed half-written tail line is simply skipped).

Files are keyed by :func:`function_fingerprint` — a stable hash of the
traced function's structure (op sequence, operand wiring, attrs, shapes,
dtypes), the mesh, the device, and the initial sharding state the search
starts from.  Any of those changing changes the fingerprint, so stale
costs can never leak across programs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from typing import Dict, List, Optional, Set, Tuple

from repro.core.actions import TILE_INPUT
from repro.core.sharding import ShardingEnv, enumerate_function_values
from repro.ir.function import Function

from repro.auto import faults
from repro.auto.tree import ActionKey


# -- fingerprinting ----------------------------------------------------------------


def _canon(obj):
    """Canonical, deterministic rendering of an attr value for hashing."""
    if isinstance(obj, dict):
        return ("dict",) + tuple(
            (repr(k), _canon(v)) for k, v in sorted(obj.items(), key=repr)
        )
    if isinstance(obj, (list, tuple)):
        return ("seq",) + tuple(_canon(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set",) + tuple(sorted(repr(v) for v in obj))
    if hasattr(obj, "tobytes") and hasattr(obj, "shape"):  # ndarray-like
        digest = hashlib.blake2b(obj.tobytes(), digest_size=8).hexdigest()
        return ("nd", tuple(obj.shape), str(getattr(obj, "dtype", "")), digest)
    return repr(obj)


def function_fingerprint(function: Function, mesh,
                         device=None, env: Optional[ShardingEnv] = None) -> str:
    """Stable hex fingerprint of a traced function in its search context.

    Hashes the structural identity of everything a canonical action set's
    cost depends on: the op sequence (opcodes, attrs, operand wiring by
    canonical value index), every value's shape/dtype, the mesh, the
    device, and the initial (pre-search) sharding state.  Object ids,
    value uids and Python hash salts never enter the digest, so the
    fingerprint is stable across processes and runs.
    """
    hasher = hashlib.blake2b(digest_size=16)
    index = {
        value: i
        for i, value in enumerate(enumerate_function_values(function))
    }

    def feed(payload) -> None:
        hasher.update(repr(payload).encode())
        hasher.update(b"\x00")

    def visit(fn: Function) -> None:
        feed(("fn", len(fn.params), len(fn.ops), len(fn.results)))
        for param in fn.params:
            feed(("param", index[param], param.type.shape,
                  str(param.type.dtype)))
        for op in fn.ops:
            feed((
                "op", op.opcode,
                tuple(index[o] for o in op.operands),
                tuple((index[r], r.type.shape, str(r.type.dtype))
                      for r in op.results),
                _canon(op.attrs),
            ))
            for region in op.regions:
                visit(region)
        feed(("results", tuple(index[r] for r in fn.results)))

    visit(function)
    feed(("mesh", tuple(sorted(mesh.axes.items()))))
    if device is not None:
        feed(("device", _canon(dataclasses.asdict(device))
              if dataclasses.is_dataclass(device) else repr(device)))
    if env is not None:
        feed(("env", env.portable_state(function)))
    return hasher.hexdigest()


# -- JSON round-tripping of keys ---------------------------------------------------


def _to_jsonable(obj):
    """Nested tuples -> nested lists (ints/floats/strings pass through)."""
    if isinstance(obj, (tuple, list)):
        return [_to_jsonable(v) for v in obj]
    return obj


def _from_jsonable(obj):
    """Inverse of :func:`_to_jsonable`: nested lists -> nested tuples."""
    if isinstance(obj, list):
        return tuple(_from_jsonable(v) for v in obj)
    return obj


def _parse_key(raw) -> Tuple:
    """An action key from its JSON form: a tuple of ``(kind, index, dim,
    axis)`` wire tuples.  Pre-widening 3-tuple records ``(index, dim,
    axis)`` — input tilings by definition — are upgraded to the uniform
    form on load: uniform widths keep the incumbent tie-break and the
    4-way action unpack total.  (This only ever fires for logs whose
    fingerprint still matches — traces with ``tag_points=False`` or
    tag-free functions; a default re-trace inserts tag ops, changes the
    fingerprint, and starts a fresh log file.)"""
    key = []
    for action in raw:
        action = tuple(v if isinstance(v, str) else int(v) for v in action)
        if len(action) == 3:
            action = (TILE_INPUT,) + action
        if len(action) != 4:
            raise ValueError(f"malformed action record {action!r}")
        key.append(action)
    return tuple(key)


# -- the table ---------------------------------------------------------------------


class TranspositionTable:
    """Canonical-action-set -> cost, with optional append-only persistence.

    ``lookup`` counts hits (and, separately, *warm* hits on entries loaded
    from disk — the cross-call reuse the persistent cache exists for).
    ``store`` registers a fresh cost and queues one record for the log;
    ``flush`` appends the queued records in one write.  The steady state
    never rewrites or rereads existing bytes; the one exception is
    :meth:`compact` — run explicitly, or automatically at load when the
    log is both large and mostly waste (duplicate keys from concurrent
    writers/crash replays, torn lines) — which rewrites the file to the
    newest record per key with hits and values unchanged.
    """

    #: Auto-compaction thresholds, checked once per load: rewrite the log
    #: when it exceeds this many bytes AND carries more than this fraction
    #: of duplicate/torn records (a healthy append-only log — every record
    #: a distinct first score — is never rewritten, no matter how big).
    COMPACT_MIN_BYTES = 1 << 20
    COMPACT_WASTE_RATIO = 0.25

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.hits = 0
        self.warm_hits = 0
        self.compactions = 0
        self.evictions = 0
        self._costs: Dict[ActionKey, float] = {}
        self._warm: Set[ActionKey] = set()
        self._pending: List[Tuple[ActionKey, float]] = []
        #: group key -> (visits, total reward), summed across the log's
        #: prior records (the persisted tree statistics).
        self._priors: Dict[Tuple, Tuple[int, float]] = {}
        self._prior_pending: List[Tuple[Tuple, int, float]] = []
        #: action wire tuple -> propagation-fixed-point digest (the
        #: condenser's persisted equivalence-class labels; first record
        #: per action wins — probes are deterministic per fingerprint).
        self._probes: Dict[Tuple, str] = {}
        self._probe_pending: List[Tuple[Tuple, str]] = []
        if path is not None and os.path.exists(path):
            records, waste = self._load(path)
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            if (size >= self.COMPACT_MIN_BYTES and records
                    and waste / records > self.COMPACT_WASTE_RATIO):
                self.compact()

    @property
    def warm_entries(self) -> int:
        return len(self._warm)

    # -- tree statistics (action-group priors) -------------------------------

    def warm_priors(self) -> Dict[Tuple, Tuple[int, float]]:
        """Accumulated per-group ``(visits, total reward)`` statistics —
        the warm-start input of :class:`repro.auto.tree.TreePolicy`."""
        return dict(self._priors)

    def store_priors(self, stats) -> None:
        """Fold one search's live per-group statistics in and queue their
        *delta* records for the log (appended by :meth:`flush`)."""
        for group, entry in stats.items():
            visits, total = int(entry[0]), float(entry[1])
            if visits <= 0:
                continue
            old = self._priors.get(group, (0, 0.0))
            self._priors[group] = (old[0] + visits, old[1] + total)
            if self.path is not None:
                self._prior_pending.append((group, visits, total))

    # -- probe signatures (the condenser's equivalence classes) ---------------

    def warm_probes(self) -> Dict[Tuple, str]:
        """Persisted ``action -> fixed-point digest`` probe signatures —
        the warm-start input of :func:`repro.auto.prune.condense` (a
        covered action skips its propagation probe entirely)."""
        return dict(self._probes)

    def store_probes(self, signatures: Dict[Tuple, str]) -> None:
        """Register freshly-probed signatures and queue the new ones for
        the log.  Signatures are deterministic per fingerprint, so an
        action already covered is never re-queued (append-only, no
        churn)."""
        for action, digest in signatures.items():
            if action in self._probes:
                continue
            self._probes[action] = digest
            if self.path is not None:
                self._probe_pending.append((action, digest))

    def __len__(self) -> int:
        return len(self._costs)

    def __contains__(self, key: ActionKey) -> bool:
        return key in self._costs

    def lookup(self, key: ActionKey) -> Optional[float]:
        cost = self._costs.get(key)
        if cost is not None:
            self.hits += 1
            if key in self._warm:
                self.warm_hits += 1
        return cost

    def peek(self, key: ActionKey) -> Optional[float]:
        """Like :meth:`lookup` but without counting a hit."""
        return self._costs.get(key)

    def best_entry(self, key_filter=None) -> Optional[Tuple[ActionKey,
                                                            float]]:
        """The best ``(key, cost)`` the table knows, under the search's
        incumbent rule (lowest cost; exact ties go to the lexicographically
        smaller key), or None for an empty table.  A warm-started search
        seeds its incumbent from this, so a second call can never report a
        worse schedule than what earlier calls already scored.

        ``key_filter`` restricts the scan (e.g. to input-tiling-only keys
        when the caller searches ``action_space="inputs"`` — logs are
        shared per fingerprint across action spaces, and a narrower search
        must never adopt an incumbent it is not allowed to propose)."""
        best = None
        for key, cost in self._costs.items():
            if key_filter is not None and not key_filter(key):
                continue
            if (best is None or cost < best[1]
                    or (cost == best[1] and key < best[0])):
                best = (key, cost)
        return best

    def store(self, key: ActionKey, cost: float) -> None:
        if key in self._costs:
            return
        self._costs[key] = cost
        if self.path is not None:
            self._pending.append((key, cost))

    def flush(self) -> None:
        """Append queued records to the log (no-op when nothing is new).

        A crash mid-append leaves at most one torn final line, which the
        next load skips silently — the fault-injection site
        ``cache.append`` simulates exactly that (half a line written,
        everything after it lost, in-memory state untouched)."""
        if self.path is None or not (self._pending or self._prior_pending
                                     or self._probe_pending):
            return
        lines = []
        for key, cost in self._pending:
            record = {"k": [list(action) for action in key], "c": cost}
            lines.append(json.dumps(record) + "\n")
        for group, visits, total in self._prior_pending:
            record = {"g": _to_jsonable(group), "n": visits, "t": total}
            lines.append(json.dumps(record) + "\n")
        for action, digest in self._probe_pending:
            record = {"pa": list(action), "ps": digest}
            lines.append(json.dumps(record) + "\n")
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a") as handle:
            for line in lines:
                if faults.should_fire("cache.append"):
                    # Faithful torn write: half of this line reaches the
                    # log, the rest of the flush never happens.  The
                    # queues still clear — a crashed writer would not
                    # retry either — and nothing in memory changes, so
                    # the search continues unaffected.
                    handle.write(line[:max(1, len(line) // 2)])
                    break
                handle.write(line)
        self._pending = []
        self._prior_pending = []
        self._probe_pending = []

    def compact(self, max_entries: Optional[int] = None) -> None:
        """Rewrite the log keeping exactly one (the newest) record per key.

        The in-memory table — already the last-record-wins replay of the
        log, with any torn tail skipped — *is* the compacted content, so
        hits and values are unchanged by construction.  The rewrite is
        crash-safe: temp file, ``fsync`` of its contents *before* the
        atomic rename (so the rename can never publish an empty or
        partially-flushed file after a power cut), then a directory
        ``fsync`` so the rename itself is durable.  A kill at any point
        leaves either the old log intact or the complete new one.

        ``max_entries`` additionally caps the table LRU-style: cost
        entries beyond the cap are evicted oldest-first-stored (dict
        insertion order — the log replay order, so a long-lived cache dir
        sheds its most ancient scores first) and counted in
        ``self.evictions``.  The cap applies to in-memory tables too; only
        the rewrite step needs a ``path``.
        """
        if max_entries is not None and max_entries >= 0:
            while len(self._costs) > max_entries:
                oldest = next(iter(self._costs))
                del self._costs[oldest]
                self._warm.discard(oldest)
                self.evictions += 1
            if self._pending:
                self._pending = [entry for entry in self._pending
                                 if entry[0] in self._costs]
        if self.path is None:
            return
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp_path = self.path + ".compact.tmp"
        with open(tmp_path, "w") as handle:
            for key, cost in self._costs.items():
                record = {"k": [list(action) for action in key], "c": cost}
                handle.write(json.dumps(record) + "\n")
            for group, (visits, total) in self._priors.items():
                record = {"g": _to_jsonable(group), "n": visits, "t": total}
                handle.write(json.dumps(record) + "\n")
            for action, digest in self._probes.items():
                record = {"pa": list(action), "ps": digest}
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:  # platforms without directory fds
            dir_fd = None
        if dir_fd is not None:
            try:
                os.fsync(dir_fd)
            except OSError:
                pass
            finally:
                os.close(dir_fd)
        # Everything queued is already part of _costs/_priors/_probes and
        # was just written; flushing it again would duplicate cost records
        # and — since prior records SUM on load — double-count statistics.
        self._pending = []
        self._prior_pending = []
        self._probe_pending = []
        self.compactions += 1

    def _load(self, path: str) -> Tuple[int, int]:
        """Replay the log; returns ``(records, wasted records)`` where
        wasted counts duplicate-key overwrites (for priors: repeat records
        for an already-seen group, which compaction merges into one) and
        torn/garbled lines — the load-time compaction signal.

        A garbled *final* line is the expected signature of a crashed
        writer (a torn append) and is skipped silently; garbage anywhere
        **mid-file** means real corruption — still skipped, so the intact
        records survive, but surfaced as a ``RuntimeWarning``."""
        records = 0
        waste = 0
        line_number = 0
        bad_lines: List[int] = []
        with open(path) as handle:
            for line in handle:
                line_number += 1
                line = line.strip()
                if not line:
                    continue
                records += 1
                try:
                    record = json.loads(line)
                    if "pa" in record:
                        (action,) = _parse_key([record["pa"]])
                        digest = str(record["ps"])
                        if action in self._probes:
                            waste += 1  # concurrent writers raced; first wins
                        else:
                            self._probes[action] = digest
                        continue
                    if "g" in record:
                        group = _from_jsonable(record["g"])
                        visits = int(record["n"])
                        total = float(record["t"])
                        old = self._priors.get(group)
                        if old is not None:
                            waste += 1  # delta records merge on compaction
                            self._priors[group] = (old[0] + visits,
                                                   old[1] + total)
                        else:
                            self._priors[group] = (visits, total)
                        continue
                    key = _parse_key(record["k"])
                    cost = float(record["c"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    waste += 1
                    bad_lines.append(line_number)
                    continue  # skip; classified after the scan
                if key in self._costs:
                    waste += 1  # superseded by this newer record
                self._costs[key] = cost
                self._warm.add(key)
        corrupt = [n for n in bad_lines if n < line_number]
        if corrupt:
            warnings.warn(
                f"transposition log {path!r}: skipped {len(corrupt)} "
                f"corrupt mid-file line(s) (first at line {corrupt[0]}); "
                "intact records were kept",
                RuntimeWarning,
            )
        return records, waste


def table_for(cache_dir: Optional[str], function: Function, mesh,
              device, env: Optional[ShardingEnv]) -> TranspositionTable:
    """The (possibly persistent) table for one search invocation."""
    if cache_dir is None:
        return TranspositionTable()
    fingerprint = function_fingerprint(function, mesh, device, env)
    return TranspositionTable(
        path=os.path.join(cache_dir, f"tt_{fingerprint}.jsonl")
    )
