"""Automatic partitioning: Monte-Carlo tree search over tile actions.

The paper's ``AutomaticPartition`` tactic is "an interface for any
optimization algorithm"; like the paper (and AutoMap, Alabed et al. 2022),
we implement an MCTS whose actions are exactly the manual API's tile actions
and whose reward comes from the analytical cost model — so automatic and
manual tactics compose through the same action vocabulary.

The search state is a sequence of tile actions on function inputs; each
evaluation applies the actions to a copy of the sharding environment, runs
propagation, lowers, and scores estimated runtime with a hard penalty for
exceeding device memory.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.propagate import propagate
from repro.core.sharding import ShardingEnv
from repro.ir.function import Function
from repro.sim import costmodel
from repro.sim.devices import TPU_V3, DeviceSpec
from repro.spmd.fusion import fuse_collectives
from repro.spmd.lower import lower

# An action: (input_index, dim, axis). None is STOP.
Action = Optional[Tuple[int, int, str]]


@dataclasses.dataclass
class SearchResult:
    actions: List[Tuple[int, int, str]]
    cost: float
    evaluations: int


def _candidate_actions(function: Function, env: ShardingEnv,
                       axes: Sequence[str],
                       max_inputs: int = 48) -> List[Tuple[int, int, str]]:
    """Enumerate legal tile actions on the largest function inputs."""
    ranked = sorted(
        enumerate(function.params),
        key=lambda pair: -pair[1].type.nbytes,
    )[:max_inputs]
    actions = []
    for index, param in ranked:
        sharding = env.sharding(param)
        for axis in axes:
            if sharding.uses(axis):
                continue
            for dim, size in enumerate(param.type.shape):
                denom = env.mesh.group_size(sharding.dim_axes[dim])
                if size % (denom * env.mesh.size(axis)) == 0:
                    actions.append((index, dim, axis))
    return actions


def _evaluate(function: Function, base_env: ShardingEnv,
              actions: Sequence[Tuple[int, int, str]],
              device: DeviceSpec) -> float:
    env = base_env.copy()
    for index, dim, axis in actions:
        param = function.params[index]
        sharding = env.sharding(param)
        if sharding.uses(axis):
            continue
        denom = env.mesh.group_size(sharding.dim_axes[dim])
        if param.type.shape[dim] % (denom * env.mesh.size(axis)):
            continue
        env.set_sharding(param, sharding.with_tile(dim, axis))
    propagate(function, env)
    lowered = lower(function, env)
    lowered.function = fuse_collectives(lowered.function)
    estimate = costmodel.estimate(lowered, device)
    cost = estimate.runtime_s
    if estimate.peak_memory_bytes > device.hbm_bytes:
        cost *= 1e3 * (estimate.peak_memory_bytes / device.hbm_bytes)
    return cost


class _Node:
    __slots__ = ("action", "parent", "children", "visits", "total", "untried")

    def __init__(self, action: Action, parent: Optional["_Node"],
                 untried: List[Action]):
        self.action = action
        self.parent = parent
        self.children: List[_Node] = []
        self.visits = 0
        self.total = 0.0
        self.untried = list(untried)

    def path(self) -> List[Tuple[int, int, str]]:
        node, actions = self, []
        while node.parent is not None:
            if node.action is not None:
                actions.append(node.action)
            node = node.parent
        return list(reversed(actions))

    def uct_child(self, exploration: float) -> "_Node":
        log_n = math.log(max(self.visits, 1))
        return max(
            self.children,
            key=lambda c: (c.total / max(c.visits, 1))
            + exploration * math.sqrt(log_n / max(c.visits, 1)),
        )


def mcts_search(
    function: Function,
    env: ShardingEnv,
    axes: Sequence[str],
    device: DeviceSpec = TPU_V3,
    budget: int = 24,
    rollout_depth: int = 3,
    exploration: float = 0.5,
    seed: int = 0,
    max_inputs: int = 48,
) -> SearchResult:
    """UCT search; returns the best action sequence found."""
    rng = random.Random(seed)
    candidates = _candidate_actions(function, env, axes, max_inputs)
    baseline = _evaluate(function, env, [], device)
    best_actions: List[Tuple[int, int, str]] = []
    best_cost = baseline
    evaluations = 1

    root = _Node(None, None, [None] + candidates)
    for _ in range(budget):
        node = root
        # Selection.
        while not node.untried and node.children:
            node = node.uct_child(exploration)
        # Expansion.
        if node.untried:
            action = node.untried.pop(rng.randrange(len(node.untried)))
            prefix = node.path()
            remaining = [
                a for a in candidates
                if a is not None and a not in prefix and a != action
            ]
            child = _Node(action, node,
                          [None] + remaining if action is not None else [])
            node.children.append(child)
            node = child
        # Rollout.
        actions = node.path()
        depth = rng.randrange(rollout_depth + 1)
        pool = [a for a in candidates if a not in actions]
        rng.shuffle(pool)
        rollout = actions + pool[:depth]
        cost = _evaluate(function, env, rollout, device)
        evaluations += 1
        if cost < best_cost:
            best_cost = cost
            best_actions = rollout
        # Backpropagation (reward = relative improvement).
        reward = (baseline - cost) / max(baseline, 1e-12)
        while node is not None:
            node.visits += 1
            node.total += reward
            node = node.parent
    return SearchResult(best_actions, best_cost, evaluations)


def run_automatic_partition(
    function: Function,
    env: ShardingEnv,
    axes: Sequence[str],
    device: DeviceSpec = TPU_V3,
    budget: int = 24,
    rollout_depth: int = 3,
    seed: int = 0,
    max_inputs: int = 48,
    **_ignored,
) -> int:
    """Entry point used by :class:`repro.api.AutomaticPartition`.

    Runs the search against a copy of the env, then applies the winning
    actions to the real env and propagates (so the tactic composes with
    earlier manual tactics and can never undo them).
    """
    result = mcts_search(function, env, axes, device=device, budget=budget,
                         rollout_depth=rollout_depth, seed=seed,
                         max_inputs=max_inputs)
    applied = 0
    for index, dim, axis in result.actions:
        param = function.params[index]
        sharding = env.sharding(param)
        if sharding.uses(axis):
            continue
        denom = env.mesh.group_size(sharding.dim_axes[dim])
        if param.type.shape[dim] % (denom * env.mesh.size(axis)):
            continue
        env.set_sharding(param, sharding.with_tile(dim, axis))
        env.record("tile", None, axis, f"auto tile dim {dim}")
        applied += 1
    propagate(function, env)
    return applied
