"""Automatic partitioning: Monte-Carlo tree search over tile actions.

The paper's ``AutomaticPartition`` tactic is "an interface for any
optimization algorithm"; like the paper (and AutoMap, Alabed et al. 2022),
we implement an MCTS whose actions are exactly the manual API's tile actions
and whose reward comes from the analytical cost model — so automatic and
manual tactics compose through the same action vocabulary.

The search state is a *set* of tile actions on function inputs.  Evaluation
is canonical: the actions are sorted and deduped, then applied in that order
with one propagation fixed point per action — so an evaluation's outcome is
a pure function of the canonical action set, independent of the order the
tree discovered it in.  That purity is what makes the three speed layers
exact:

* a **transposition table** keyed by the canonical action tuple means a
  rollout that reaches an already-scored action set costs a dict lookup
  instead of a propagate/lower/estimate pipeline run,
* a **prefix env cache**: the propagated :class:`ShardingEnv` for each
  canonical prefix is memoized, so scoring a set extends its longest cached
  prefix with incremental propagation (worklist seeded from the one new
  action) rather than replaying the whole prefix from scratch, and
* a **streaming cost evaluator** (``streaming=True``): instead of
  materializing a device-local function, fusing its collectives, and
  walking it (thousands of Operation/Value allocations thrown away per
  rollout), the cost is accumulated directly from the lowering stream
  (:class:`repro.sim.costmodel.StreamingEstimator`), with per-op lowering
  plans memoized on sharding signatures so only ops whose neighborhood
  changed since a previous evaluation are re-planned.

``memoize=False`` / ``incremental=False`` / ``streaming=False`` disable the
caches / the worklist engine / the streaming evaluator without changing any
result — the regression and property tests pin this (the streaming path is
bit-identical to ``lower -> fuse_collectives -> estimate``).
"""

from __future__ import annotations

import dataclasses
import math
import random
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.propagate import propagate
from repro.core.sharding import ShardingEnv
from repro.ir.function import Function
from repro.sim import costmodel
from repro.sim.devices import TPU_V3, DeviceSpec
from repro.spmd.fusion import fuse_collectives
from repro.spmd.lower import lower

# An action: (input_index, dim, axis). None is STOP.
Action = Optional[Tuple[int, int, str]]
ActionKey = Tuple[Tuple[int, int, str], ...]


@dataclasses.dataclass
class SearchResult:
    actions: List[Tuple[int, int, str]]
    cost: float
    evaluations: int  # cost-model evaluations actually computed
    cache_hits: int = 0  # transposition-table hits
    propagate_calls: int = 0
    ops_processed: int = 0
    #: Materializing lower() pipeline runs (0 on the streaming path).
    lower_calls: int = 0
    #: Per-op lowering plans reused from the streaming evaluator's memo.
    estimate_ops_reused: int = 0
    #: Wall-clock split: env extension (apply + propagate) vs cost
    #: evaluation (lower/fuse/estimate, streaming or materialized).
    propagate_time_s: float = 0.0
    estimate_time_s: float = 0.0


def _canonical(actions: Sequence[Tuple[int, int, str]]) -> ActionKey:
    """Canonical form of an action sequence: sorted, deduped tuple."""
    return tuple(sorted(set(actions)))


def _action_legal(env: ShardingEnv, param, dim: int, axis: str) -> bool:
    """May ``param``'s ``dim`` still be tiled along ``axis`` under ``env``?"""
    sharding = env.sharding(param)
    if sharding.uses(axis) or sharding.is_pinned(axis):
        return False
    denom = env.mesh.group_size(sharding.dim_axes[dim])
    return param.type.shape[dim] % (denom * env.mesh.size(axis)) == 0


def _candidate_actions(function: Function, env: ShardingEnv,
                       axes: Sequence[str],
                       max_inputs: int = 48) -> List[Tuple[int, int, str]]:
    """Enumerate legal tile actions on the largest function inputs."""
    ranked = sorted(
        enumerate(function.params),
        key=lambda pair: -pair[1].type.nbytes,
    )[:max_inputs]
    actions = []
    for index, param in ranked:
        for axis in axes:
            for dim in range(len(param.type.shape)):
                if _action_legal(env, param, dim, axis):
                    actions.append((index, dim, axis))
    return actions


def _try_apply_action(function: Function, env: ShardingEnv,
                      action: Tuple[int, int, str]) -> bool:
    """Apply one tile action if it is still legal under ``env``."""
    index, dim, axis = action
    param = function.params[index]
    if not _action_legal(env, param, dim, axis):
        return False
    env.set_sharding(param, env.sharding(param).with_tile(dim, axis))
    return True


class _Evaluator:
    """Scores canonical action sets; owns the memoization layers."""

    def __init__(self, function: Function, env: ShardingEnv,
                 device: DeviceSpec, incremental: bool = True,
                 memoize: bool = True, streaming: bool = True):
        self.function = function
        self.device = device
        self.incremental = incremental
        self.memoize = memoize
        self.streaming = streaming
        self.evaluations = 0
        self.cache_hits = 0
        self.lower_calls = 0
        self.propagate_time_s = 0.0
        self.estimate_time_s = 0.0
        self._cost_cache: Dict[ActionKey, float] = {}
        self._env_cache: Dict[ActionKey, ShardingEnv] = {}
        # One streaming estimator for the whole search: its per-op plan
        # memo is what lets an evaluation reuse the lowering decisions of
        # every previously-scored env that agrees on an op's neighborhood.
        self._estimator = costmodel.StreamingEstimator(
            function, env.mesh, device
        ) if streaming else None
        # Root fixed point: search never mutates the caller's env.  The
        # event log is dropped — evaluation envs never read it, and every
        # cached prefix env would otherwise re-copy the whole history.
        self.root = env.copy(with_events=False)
        propagate(function, self.root, incremental=incremental)

    @property
    def estimate_ops_reused(self) -> int:
        return self._estimator.ops_reused if self._estimator else 0

    def _env_for(self, key: ActionKey) -> ShardingEnv:
        """Propagated env for a canonical action prefix.

        Recursively extends the env of ``key[:-1]`` by one action + one
        propagation fixed point, reusing cached prefixes when memoizing.
        """
        if not key:
            return self.root
        if self.memoize:
            cached = self._env_cache.get(key)
            if cached is not None:
                return cached
        env = self._env_for(key[:-1]).copy()
        _try_apply_action(self.function, env, key[-1])
        propagate(self.function, env, incremental=self.incremental)
        if self.memoize:
            self._env_cache[key] = env
        return env

    def evaluate(self, actions: Sequence[Tuple[int, int, str]]) -> float:
        key = _canonical(actions)
        if self.memoize:
            cached = self._cost_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        t0 = time.perf_counter()
        env = self._env_for(key)
        t1 = time.perf_counter()
        self.propagate_time_s += t1 - t0
        if self.streaming:
            estimate = self._estimator.estimate(env)
        else:
            lowered = lower(self.function, env)
            lowered.function = fuse_collectives(lowered.function)
            estimate = costmodel.estimate(lowered, self.device)
            self.lower_calls += 1
        cost = costmodel.search_objective(estimate, self.device)
        self.estimate_time_s += time.perf_counter() - t1
        self.evaluations += 1
        if self.memoize:
            self._cost_cache[key] = cost
        return cost


class _Node:
    __slots__ = ("action", "parent", "children", "visits", "total",
                 "untried", "action_set")

    def __init__(self, action: Action, parent: Optional["_Node"],
                 untried: List[Action]):
        self.action = action
        self.parent = parent
        self.children: List[_Node] = []
        self.visits = 0
        self.total = 0.0
        self.untried = list(untried)
        # O(1) membership for "is this action already on my path" — replaces
        # the former O(n) list scans over the prefix.
        base: FrozenSet = parent.action_set if parent is not None else frozenset()
        self.action_set: FrozenSet = (
            base | {action} if action is not None else base
        )

    def path(self) -> List[Tuple[int, int, str]]:
        node, actions = self, []
        while node.parent is not None:
            if node.action is not None:
                actions.append(node.action)
            node = node.parent
        return list(reversed(actions))

    def uct_child(self, exploration: float) -> "_Node":
        log_n = math.log(max(self.visits, 1))
        return max(
            self.children,
            key=lambda c: (c.total / max(c.visits, 1))
            + exploration * math.sqrt(log_n / max(c.visits, 1)),
        )


def mcts_search(
    function: Function,
    env: ShardingEnv,
    axes: Sequence[str],
    device: DeviceSpec = TPU_V3,
    budget: int = 24,
    rollout_depth: int = 3,
    exploration: float = 0.5,
    seed: int = 0,
    max_inputs: int = 48,
    incremental: bool = True,
    memoize: bool = True,
    streaming: bool = True,
) -> SearchResult:
    """UCT search; returns the best action sequence found.

    ``incremental``/``memoize``/``streaming`` toggle the worklist
    propagation engine, the transposition/prefix-env caches, and the
    streaming cost evaluator; none of them changes the returned actions or
    cost for a fixed seed (the streaming evaluator is bit-identical to the
    materializing pipeline).
    """
    rng = random.Random(seed)
    candidates = _candidate_actions(function, env, axes, max_inputs)
    # Snapshot before _Evaluator.__init__: its root fixed point counts too.
    stats_before = env.stats.snapshot()
    evaluator = _Evaluator(function, env, device, incremental=incremental,
                           memoize=memoize, streaming=streaming)
    baseline = evaluator.evaluate([])
    best_actions: ActionKey = ()
    best_cost = baseline

    root = _Node(None, None, [None] + candidates)
    for _ in range(budget):
        node = root
        # Selection.
        while not node.untried and node.children:
            node = node.uct_child(exploration)
        # Expansion.
        if node.untried:
            action = node.untried.pop(rng.randrange(len(node.untried)))
            child = _Node(action, node, [])
            if action is not None:
                child.untried = [None] + [
                    a for a in candidates if a not in child.action_set
                ]
            node.children.append(child)
            node = child
        # Rollout.
        actions = node.path()
        depth = rng.randrange(rollout_depth + 1)
        pool = [a for a in candidates if a not in node.action_set]
        rng.shuffle(pool)
        rollout = actions + pool[:depth]
        cost = evaluator.evaluate(rollout)
        if cost < best_cost:
            best_cost = cost
            best_actions = _canonical(rollout)
        # Backpropagation (reward = relative improvement).
        reward = (baseline - cost) / max(baseline, 1e-12)
        while node is not None:
            node.visits += 1
            node.total += reward
            node = node.parent
    stats_after = evaluator.root.stats.snapshot()
    return SearchResult(
        actions=list(best_actions),
        cost=best_cost,
        evaluations=evaluator.evaluations,
        cache_hits=evaluator.cache_hits,
        propagate_calls=stats_after[0] - stats_before[0],
        ops_processed=stats_after[2] - stats_before[2],
        lower_calls=evaluator.lower_calls,
        estimate_ops_reused=evaluator.estimate_ops_reused,
        propagate_time_s=evaluator.propagate_time_s,
        estimate_time_s=evaluator.estimate_time_s,
    )


def run_automatic_partition(
    function: Function,
    env: ShardingEnv,
    axes: Sequence[str],
    device: DeviceSpec = TPU_V3,
    budget: int = 24,
    rollout_depth: int = 3,
    seed: int = 0,
    max_inputs: int = 48,
    incremental: bool = True,
    memoize: bool = True,
    streaming: bool = True,
    **_ignored,
) -> int:
    """Entry point used by :class:`repro.api.AutomaticPartition`.

    Runs the search against a copy of the env, then applies the winning
    actions to the real env and propagates (so the tactic composes with
    earlier manual tactics and can never undo them).  The search itself
    scores candidates through the streaming cost evaluator; the winner's
    replay only re-applies actions — real device-local IR is materialized
    once, later, by ``partir_jit``'s final lowering.
    """
    result = mcts_search(function, env, axes, device=device, budget=budget,
                         rollout_depth=rollout_depth, seed=seed,
                         max_inputs=max_inputs, incremental=incremental,
                         memoize=memoize, streaming=streaming)
    # Replay the winner exactly the way the evaluator scored it: one
    # propagation fixed point per canonical action.  Applying all actions
    # first and propagating once could reach a different fixed point (a
    # later action's legality check would no longer see the propagated
    # state it was evaluated under), so the env would not realize
    # ``result.cost``.
    propagate(function, env, incremental=incremental)
    applied = 0
    for action in _canonical(result.actions):
        if _try_apply_action(function, env, action):
            env.record("tile", None, action[2], f"auto tile dim {action[1]}")
            applied += 1
            # A skipped action needs no re-propagation: the env is already
            # at a fixed point and the evaluator's sweep after a skipped
            # apply provably changes nothing.
            propagate(function, env, incremental=incremental)
    return applied
