"""Automatic partitioning: Monte-Carlo tree search over tile actions.

The paper's ``AutomaticPartition`` tactic is "an interface for any
optimization algorithm"; like the paper (and AutoMap, Alabed et al. 2022),
we implement an MCTS whose actions are exactly the manual API's tile actions
and whose reward comes from the analytical cost model — so automatic and
manual tactics compose through the same action vocabulary.

This module is the public entry point of the :mod:`repro.auto` package; the
subsystem behind it has four seams:

* :mod:`repro.auto.tree` — UCT node/selection policy with virtual loss (so
  several leaves can be in flight) and per-rollout RNG streams derived from
  ``(seed, node id)`` rather than one shared generator,
* :mod:`repro.auto.evaluator` — the prefix-env + streaming-estimator
  evaluation pipeline; ``evaluate`` is a pure function of the canonical
  (sorted, deduped) action set,
* :mod:`repro.auto.scheduler` — the rollout backends: ``serial`` (the
  classic loop, bit-identical), ``batched`` (waves scored through shared
  prefix envs), and ``process`` (waves fanned across ``multiprocessing``
  workers), and
* :mod:`repro.auto.cache` — the transposition table, including append-only
  on-disk persistence keyed by a traced-function fingerprint so repeated
  ``partir_jit``/``AutomaticPartition`` calls warm-start from prior scores
  (``cache_dir=``).

``memoize=False`` / ``incremental=False`` / ``streaming=False`` disable the
caches / the worklist engine / the streaming evaluator without changing any
result.  The backends agree on the best actions/cost across the fixed-seed
regression suite and the Fig 11 configs: evaluation purity makes every
scored set backend-independent and the incumbent rule breaks exact cost
ties deterministically, though a parallel wave does explore a different
rollout set than the serial loop, so agreement is a pinned regression
property of these configs rather than a theorem.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import List, Optional, Sequence, Tuple

from repro.core import actions as core_actions
from repro.core.propagate import propagate
from repro.core.sharding import ShardingEnv
from repro.ir.function import Function
from repro.sim.devices import TPU_V3, DeviceSpec

from repro.auto import faults
from repro.auto import prune as prune_mod
from repro.auto.cache import table_for
from repro.auto.evaluator import (
    Evaluator,
    action_group_key,
    action_legal,
    candidate_actions,
    try_apply_action,
)
from repro.auto.scheduler import SchedulerUnavailable, make_scheduler
from repro.auto.tree import ActionKey, TreePolicy, canonical_key

# Backwards-compatible aliases (the pre-package module exposed these).
_canonical = canonical_key
_action_legal = action_legal
_candidate_actions = candidate_actions
_try_apply_action = try_apply_action
_Evaluator = Evaluator


@dataclasses.dataclass
class SearchResult:
    """What one :func:`mcts_search` run found and how it found it.

    ``actions`` is the best canonical action set, as wire tuples
    ``(kind, index, dim, axis)`` — decode with
    :func:`repro.core.actions.decode_action`.  The counters after ``cost``
    are pure observability: none of them feeds back into the search.

    >>> from repro.core.actions import decode_action
    >>> decode_action((0, 2, 0, "batch"))  # tile input 2's dim 0
    TileInput(index=2, dim=0, axis='batch')
    >>> decode_action((1, 0, 1, "model"))  # tile tag point 0's dim 1
    TileTagged(tag=0, dim=1, axis='model')
    """

    actions: List[Tuple[int, int, int, str]]
    cost: float
    evaluations: int  # cost-model evaluations actually computed
    cache_hits: int = 0  # transposition-table hits
    propagate_calls: int = 0
    ops_processed: int = 0
    #: Materializing lower() pipeline runs (0 on the streaming path).
    lower_calls: int = 0
    #: Per-op lowering plans reused from the streaming evaluator's memo.
    estimate_ops_reused: int = 0
    #: Wall-clock split: env extension (apply + propagate) vs cost
    #: evaluation (lower/fuse/estimate, streaming or materialized).
    propagate_time_s: float = 0.0
    estimate_time_s: float = 0.0
    #: Which rollout scheduler ran the search.
    backend: str = "serial"
    #: Transposition hits on entries loaded from a persistent cache file
    #: (cross-call warm starts; subset of ``cache_hits``).
    warm_cache_hits: int = 0
    #: Whole reconcile-chain costs reused by the streaming evaluator.
    reconcile_chain_hits: int = 0
    #: Which rollout env engine maintained prefix state ("undo" | "fork").
    rollout_env: str = "undo"
    #: Plans/chains served from the cross-worker shared memo (process
    #: backend; 0 elsewhere or when the shared store is unavailable).
    shared_plan_hits: int = 0
    #: Did the cross-worker shared memo's fixed-size segment fill (in any
    #: process)?  Pooling stops for later cold plans; results unaffected.
    shared_memo_full: bool = False
    #: Which action space was searched ("inputs" | "tagged").
    action_space: str = "tagged"
    #: Expansions steered by *warm-started* action-group statistics (tree
    #: reuse across calls; 0 on a cold run or without ``cache_dir``).
    tree_prior_hits: int = 0
    #: Distinct candidate action groups covered by warm-started statistics
    #: at search start.
    prior_groups: int = 0
    #: Fraction of requested prefix actions the undo engine kept in place
    #: instead of rolling back and re-applying (workers included; 0.0 for
    #: the fork engine, which has no undo stack to reuse).
    prefix_reuse_ratio: float = 0.0
    #: Evaluation waves the scheduler formed (each rollout is its own wave
    #: on the serial backend).
    waves: int = 0
    #: Mean longest-common-prefix length between consecutively evaluated
    #: action sets within a wave — how well the Euler-tour ordering lines
    #: tree-neighboring rollouts up back to back.
    wave_lcp_mean: float = 0.0
    #: Where the plan came from: ``"local"`` (this process searched), or
    #: ``"server:exact"`` / ``"server:relaxed"`` / ``"server:search"`` /
    #: ``"server:dedup"`` when a plan server answered (the suffix is the
    #: store tier that matched — see :mod:`repro.auto.planstore`).
    plan_source: str = "local"
    #: Parameters + tag points the enumeration caps (``max_inputs`` /
    #: ``max_tag_points``) silently dropped from the candidate space (a
    #: one-shot RuntimeWarning fires the first time this is nonzero).
    actions_truncated: int = 0
    #: Condenser accounting (see :mod:`repro.auto.prune`; all zero with
    #: ``prune=False``): candidates enumerated / kept after equivalence
    #: pruning, distinct propagation-fixed-point classes, probes actually
    #: run vs reused from the persisted equivalence classes, and the
    #: pre-pass wall-clock.
    candidates_total: int = 0
    candidates_kept: int = 0
    prune_classes: int = 0
    prune_probes: int = 0
    prune_probes_reused: int = 0
    prune_time_s: float = 0.0
    #: Which warm-expansion prior steered the tree ("learned" | "group" |
    #: "none"; see :mod:`repro.auto.prior`).
    prior_mode: str = "learned"
    #: What the fault fabric actually did (all zeros/empty without an
    #: installed :class:`repro.auto.faults.FaultPlan` — the zero-overhead
    #: pin).  ``faults_injected`` counts injection-site firings in *this*
    #: process during the search; ``workers_restarted`` counts pool
    #: re-forks (process backend) / session reconnects (remote);
    #: ``waves_retried`` counts wave slices re-routed after a failure;
    #: ``degraded_to`` names the in-process terminus ("serial") when the
    #: restart budget ran out, "" when the backend held.
    faults_injected: int = 0
    workers_restarted: int = 0
    waves_retried: int = 0
    degraded_to: str = ""
    #: Did the ``plan_server`` circuit breaker skip (or open on) the plan
    #: request this call?  The search still completes locally.
    server_circuit_open: bool = False


#: Upper bound on one plan request's round trip — generous because a cold
#: request makes the server *run the search* before replying.
PLAN_REQUEST_TIMEOUT_S = 600.0

#: One-shot latch for the enumeration-cap warning (the repo's no-silent-
#: caps convention: warn loudly once, count always).
_TRUNCATION_WARNED = False


def _warn_truncation(truncation: dict, max_inputs: int,
                     max_tag_points: int) -> int:
    """Surface dropped candidates; returns the total drop count."""
    global _TRUNCATION_WARNED
    dropped = sum(truncation.values())
    if dropped and not _TRUNCATION_WARNED:
        _TRUNCATION_WARNED = True
        warnings.warn(
            f"candidate enumeration truncated: "
            f"{truncation.get('inputs', 0)} parameter(s) beyond "
            f"max_inputs={max_inputs} and {truncation.get('tag_points', 0)} "
            f"tag point(s) beyond max_tag_points={max_tag_points} were "
            "dropped from the action space (largest-first ranking kept "
            "the biggest values); raise the caps to search them.  "
            "SearchResult.actions_truncated counts the drop per search; "
            "this warning fires once per process.",
            RuntimeWarning,
        )
    return dropped


def _request_plan(function: Function, env: ShardingEnv,
                  axes: Sequence[str], device: DeviceSpec,
                  plan_server: str, **search_params):
    """Ask the plan server for this function's plan.

    Returns ``(plan, circuit_open)``; ``plan=None`` means "search
    locally" (server unreachable, erroring, or its circuit breaker open —
    warned, never fatal).  The per-address breaker
    (:func:`repro.auto.rpc.breaker_for`) makes a flapping server cost one
    timeout per cooldown window instead of one per call; a
    :class:`~repro.auto.rpc.RemoteError` proves the server alive and
    counts as breaker success."""
    from repro.auto import rpc

    try:
        breaker = rpc.breaker_for(plan_server)
    except ValueError as exc:
        warnings.warn(
            f"plan server {plan_server!r} unreachable, searching "
            f"locally: {exc}",
            RuntimeWarning,
        )
        return None, False
    if not breaker.allow():
        warnings.warn(
            f"plan server {plan_server!r} circuit open after repeated "
            f"failures, searching locally (next probe within "
            f"{breaker.cooldown_s:g}s)",
            RuntimeWarning,
        )
        return None, True
    try:
        connection = rpc.connect(plan_server,
                                 timeout=PLAN_REQUEST_TIMEOUT_S)
    except OSError as exc:
        breaker.record_failure()
        warnings.warn(
            f"plan server {plan_server!r} unreachable, searching "
            f"locally: {exc}",
            RuntimeWarning,
        )
        return None, breaker.state == rpc.CircuitBreaker.OPEN
    try:
        value = connection.request({
            "kind": "plan",
            "function": function,
            "mesh": env.mesh,
            "env": env.portable_state(function),
            "device": device,
            "axes": list(axes),
            "search": dict(search_params),
        })
    except rpc.RemoteError as exc:
        # The server processed the request (it is alive): breaker-wise a
        # success, even though this call falls back to a local search.
        breaker.record_success()
        warnings.warn(
            f"plan server {plan_server!r} failed, searching locally: "
            f"{exc}",
            RuntimeWarning,
        )
        return None, False
    except OSError as exc:
        breaker.record_failure()
        warnings.warn(
            f"plan server {plan_server!r} failed, searching locally: "
            f"{exc}",
            RuntimeWarning,
        )
        return None, breaker.state == rpc.CircuitBreaker.OPEN
    else:
        breaker.record_success()
        return value, False
    finally:
        connection.close()


def mcts_search(
    function: Function,
    env: ShardingEnv,
    axes: Sequence[str],
    device: DeviceSpec = TPU_V3,
    budget: int = 24,
    rollout_depth: int = 3,
    exploration: float = 0.5,
    seed: int = 0,
    max_inputs: int = 48,
    incremental: bool = True,
    memoize: bool = True,
    streaming: bool = True,
    backend: str = "serial",
    workers: Optional[int] = None,
    wave_size: Optional[int] = None,
    cache_dir: Optional[str] = None,
    reconcile_cache: bool = True,
    rollout_env: str = "undo",
    action_space: str = "tagged",
    max_tag_points: int = 16,
    plan_server: Optional[str] = None,
    prune: bool = True,
    prior: str = "learned",
    restart_budget: Optional[int] = None,
    wave_timeout_s: Optional[float] = None,
    rpc_timeout_s: Optional[float] = None,
) -> SearchResult:
    """UCT search; returns the best action sequence found.

    ``incremental``/``memoize``/``streaming`` toggle the worklist
    propagation engine, the transposition/prefix-env caches, and the
    streaming cost evaluator; none of them changes the returned actions or
    cost for a fixed seed (the streaming evaluator is bit-identical to the
    materializing pipeline).  ``backend`` selects the rollout scheduler
    (``serial``/``batched``/``process``; see :mod:`repro.auto.scheduler`),
    ``workers``/``wave_size`` tune it, and ``cache_dir`` persists the
    transposition table **and the per-action-group tree statistics**
    across calls (append-only, keyed by the traced function's
    fingerprint): a warm search replays known costs, seeds its UCT
    expansion from the persisted statistics (``tree_prior_hits``), and
    seeds its incumbent from the best entry the table already knows.
    ``rollout_env`` picks the prefix-state engine: ``"undo"`` (default)
    extends/retracts one mutable env through an undo log with incremental
    re-estimation; ``"fork"`` is the classic env-per-prefix overlay fork.
    Results are bit-identical either way.  ``action_space`` selects
    ``"tagged"`` (default: input tilings plus mid-function
    ``TileTagged``/``SumTagged`` actions at up to ``max_tag_points`` tag
    points) or ``"inputs"`` (the classic input-tilings-only space).

    ``prune=True`` (default) runs the action-space condenser
    (:mod:`repro.auto.prune`) before the first rollout: one propagation
    probe per candidate buckets actions by their fixed point and keeps
    only one representative per equivalence class, so the rollout budget
    never re-scores propagation-identical decisions.  Probe signatures
    persist with ``cache_dir`` — warm runs bucket from the log without
    probing.  ``prior`` selects the warm-expansion scorer: ``"learned"``
    (default — the deterministic feature-hashed model of
    :mod:`repro.auto.prior`), ``"group"`` (flat per-group warm means) or
    ``"none"``.  Both knobs are semantic (they change which candidates
    rollouts see / how warm runs expand) but backend-independent: the
    probe pass and the model fit happen once, before scheduling, from
    inputs every backend shares.

    >>> from repro import Mesh, ShapeDtype, trace
    >>> from repro.core.sharding import ShardingEnv
    >>> from repro.trace import ops
    >>> traced = trace(lambda w, x: ops.reduce_sum(x @ w),
    ...                ShapeDtype((16, 16)), ShapeDtype((8, 16)))
    >>> result = mcts_search(traced.function, ShardingEnv(Mesh({"d": 2})),
    ...                      ["d"], budget=4, seed=0)
    >>> result.actions == sorted(set(result.actions))  # canonical form
    True
    >>> (result.backend, result.rollout_env, result.action_space)
    ('serial', 'undo', 'tagged')
    >>> result.tree_prior_hits  # no cache_dir: nothing warm to reuse
    0

    ``plan_server="host:port"`` asks a :mod:`repro.auto.server` daemon for
    the plan first: a store hit (exact or relaxed fingerprint tier) skips
    the local search entirely and ``plan_source`` records the tier; an
    unreachable server warns once and falls back to the local search.
    With ``backend="remote"`` the search instead runs *here* but fans its
    rollout waves across the server's evaluator sessions (falling back to
    ``serial`` if the server is unreachable).

    The fault-tolerance knobs — ``restart_budget`` (worker re-forks /
    session reconnects per search; default 1, env
    ``PARTIR_RESTART_BUDGET``), ``wave_timeout_s`` (silent-worker
    deadline; default 300, env ``PARTIR_WAVE_TIMEOUT_S``) and
    ``rpc_timeout_s`` (remote per-call socket deadline; default 60) —
    bound *recovery*, never results: whatever fails, the search completes
    with the same best actions/cost as the fault-free serial run at the
    same seed, degrading to in-process evaluation in the limit (see
    ``SearchResult.degraded_to``).
    """
    fired_before = faults.fired_count()
    server_circuit_open = False
    if plan_server is not None and backend != "remote":
        served, server_circuit_open = _request_plan(
            function, env, axes, device, plan_server,
            budget=budget, rollout_depth=rollout_depth,
            exploration=exploration, seed=seed,
            max_inputs=max_inputs,
            action_space=action_space,
            max_tag_points=max_tag_points,
            prune=prune, prior=prior)
        if served is not None:
            reply_actions = canonical_key(
                tuple(tuple(action) for action in served["actions"])
            )
            return SearchResult(
                actions=list(reply_actions),
                cost=float(served["cost"]),
                evaluations=0,
                backend=backend,
                rollout_env=rollout_env,
                action_space=action_space,
                plan_source=f"server:{served['tier']}",
                prior_mode=prior,
                faults_injected=faults.fired_count() - fired_before,
            )
    truncation: dict = {}
    candidates = candidate_actions(function, env, axes, max_inputs,
                                   action_space=action_space,
                                   max_tag_points=max_tag_points,
                                   truncation=truncation)
    actions_truncated = _warn_truncation(truncation, max_inputs,
                                         max_tag_points)
    candidates_total = len(candidates)
    # Snapshot before Evaluator.__init__: its root fixed point counts too.
    stats_before = env.stats.snapshot()
    table = table_for(cache_dir, function, env.mesh, device, env)
    evaluator = Evaluator(
        function, env, device, incremental=incremental, memoize=memoize,
        streaming=streaming, reconcile_cache=reconcile_cache, table=table,
        rollout_env=rollout_env,
    )
    prune_report = None
    if prune and candidates:
        # Condense on the evaluator's root (the search's propagation fixed
        # point): each probe checkpoints, applies + propagates, reads the
        # write delta and rolls back — bit-identical env afterwards, so
        # probing the live mutable env before scheduling is safe.  Warm
        # probe signatures from the transposition log skip the probes; the
        # result never depends on which signatures were warm.
        prune_report = prune_mod.condense(
            function, evaluator.root, candidates, incremental=incremental,
            known_signatures=table.warm_probes() if memoize else None,
        )
        candidates = prune_report.kept
        if memoize:
            table.store_probes(prune_report.signatures)
    groups = {
        action: action_group_key(function, env, action)
        for action in candidates
    }
    scheduler = make_scheduler(backend, wave_size=wave_size,
                               workers=workers, plan_server=plan_server,
                               restart_budget=restart_budget,
                               wave_timeout_s=wave_timeout_s,
                               rpc_timeout_s=rpc_timeout_s, seed=seed)
    # Fork worker pools (a no-op for in-process backends) before the
    # baseline evaluation: worker cache-priming overlaps it.
    try:
        scheduler.prepare(evaluator)
    except SchedulerUnavailable as exc:
        warnings.warn(
            f"remote backend unavailable, falling back to serial: {exc}",
            RuntimeWarning,
        )
        scheduler = make_scheduler("serial", wave_size=wave_size,
                                   workers=workers, seed=seed)
        backend = scheduler.name
        scheduler.prepare(evaluator)
    try:
        baseline = evaluator.evaluate(())
    except BaseException:
        scheduler.shutdown()
        raise
    best_key: ActionKey = ()
    best_cost = baseline
    if memoize:
        # Cross-call incumbent reuse: a warm table already knows the best
        # schedule earlier searches scored, so a repeated call can never
        # report worse than what is already on disk — even if this run's
        # (prior-steered) rollouts explore elsewhere.  The log is shared
        # per fingerprint across action spaces and axis subsets, so the
        # incumbent is restricted to what THIS call may propose: no
        # tagged actions for an inputs-only search, no actions on axes
        # outside the caller's list.  (Enumeration caps — max_inputs /
        # max_tag_points — are efficiency knobs, not semantic
        # restrictions, so entries beyond them stay adoptable.)
        axes_set = set(axes)

        def proposable(key: ActionKey) -> bool:
            return all(
                action[3] in axes_set
                and (action_space != "inputs"
                     or action[0] == core_actions.TILE_INPUT)
                for action in key
            )

        warm_best = table.best_entry(key_filter=proposable)
        if warm_best is not None and (
            warm_best[1] < best_cost
            or (warm_best[1] == best_cost and warm_best[0] < best_key)
        ):
            best_key, best_cost = warm_best

    def on_result(key: ActionKey, cost: float) -> None:
        nonlocal best_key, best_cost
        # Deterministic incumbent rule: strictly better cost wins; an exact
        # tie goes to the lexicographically smaller canonical set, so every
        # backend (whatever order its waves surface results in) reports the
        # same best.
        if cost < best_cost or (cost == best_cost and key < best_key):
            best_cost = cost
            best_key = key

    policy = TreePolicy(candidates, seed, exploration, rollout_depth,
                        group_keys=groups,
                        warm_priors=table.warm_priors() if memoize else None,
                        prior=prior)
    try:
        scheduler.run(policy, evaluator, budget, baseline, on_result)
        # Witness minimization: random rollout completions often decorate
        # the true winner with actions that no-op in its context, and the
        # padded superset is what the incumbent saw first.  Greedily drop
        # (left to right, deterministically) every action whose removal
        # leaves the cost bit-identical, so the reported plan is a minimal
        # witness of ``best_cost``: replay applies fewer actions, the plan
        # store dedups better, and two backends that surfaced different
        # cost-equal paddings of one core report the same set.
        for action in list(best_key):
            trial = tuple(a for a in best_key if a != action)
            if evaluator.evaluate(trial) == best_cost:
                best_key = trial
    finally:
        # Persist everything scored so far even when a wave dies (e.g. a
        # worker OOM-kill): the append-only log makes partial progress
        # durable, so the next run warm-starts past it.  The tree
        # statistics ride along: each search appends its own delta.
        if memoize:
            table.store_priors(policy.live_stats)
        table.flush()

    stats_after = evaluator.root.stats.snapshot()
    return SearchResult(
        actions=list(best_key),
        cost=best_cost,
        evaluations=evaluator.evaluations,
        cache_hits=evaluator.cache_hits,
        propagate_calls=(stats_after[0] - stats_before[0]
                         + evaluator.remote_propagate_calls),
        ops_processed=(stats_after[2] - stats_before[2]
                       + evaluator.remote_ops_processed),
        lower_calls=evaluator.lower_calls,
        estimate_ops_reused=evaluator.estimate_ops_reused,
        propagate_time_s=evaluator.propagate_time_s,
        estimate_time_s=evaluator.estimate_time_s,
        backend=backend,
        warm_cache_hits=table.warm_hits,
        reconcile_chain_hits=evaluator.reconcile_chain_hits,
        rollout_env=rollout_env,
        shared_plan_hits=(evaluator.shared_plan_hits
                          + evaluator.remote_shared_plan_hits),
        shared_memo_full=evaluator.shared_memo_full,
        action_space=action_space,
        tree_prior_hits=policy.tree_prior_hits,
        prior_groups=policy.prior_groups,
        prefix_reuse_ratio=evaluator.prefix_reuse_ratio,
        waves=scheduler.waves,
        wave_lcp_mean=(scheduler.wave_lcp_actions / scheduler.wave_lcp_pairs
                       if scheduler.wave_lcp_pairs else 0.0),
        actions_truncated=actions_truncated,
        candidates_total=candidates_total,
        candidates_kept=len(candidates),
        prune_classes=prune_report.classes if prune_report else 0,
        prune_probes=prune_report.probes_run if prune_report else 0,
        prune_probes_reused=(prune_report.probes_reused
                             if prune_report else 0),
        prune_time_s=prune_report.prune_time_s if prune_report else 0.0,
        prior_mode=prior,
        faults_injected=faults.fired_count() - fired_before,
        workers_restarted=scheduler.workers_restarted,
        waves_retried=scheduler.waves_retried,
        degraded_to=scheduler.degraded_to,
        server_circuit_open=server_circuit_open,
    )


def run_automatic_partition(
    function: Function,
    env: ShardingEnv,
    axes: Sequence[str],
    device: DeviceSpec = TPU_V3,
    budget: int = 24,
    rollout_depth: int = 3,
    seed: int = 0,
    max_inputs: int = 48,
    incremental: bool = True,
    memoize: bool = True,
    streaming: bool = True,
    backend: str = "serial",
    workers: Optional[int] = None,
    wave_size: Optional[int] = None,
    cache_dir: Optional[str] = None,
    reconcile_cache: bool = True,
    rollout_env: str = "undo",
    action_space: str = "tagged",
    max_tag_points: int = 16,
    plan_server: Optional[str] = None,
    prune: bool = True,
    prior: str = "learned",
    restart_budget: Optional[int] = None,
    wave_timeout_s: Optional[float] = None,
    rpc_timeout_s: Optional[float] = None,
    result_sink: Optional[list] = None,
    **_ignored,
) -> int:
    """Entry point used by :class:`repro.api.AutomaticPartition`.

    Runs the search against a copy of the env, then applies the winning
    actions to the real env and propagates (so the tactic composes with
    earlier manual tactics and can never undo them).  The search itself
    scores candidates through the streaming cost evaluator; the winner's
    replay only re-applies actions — real device-local IR is materialized
    once, later, by ``partir_jit``'s final lowering.  When ``result_sink``
    is a list, the full :class:`SearchResult` is appended to it (the API
    layer surfaces it as ``AutomaticPartition.last_search``).
    """
    result = mcts_search(function, env, axes, device=device, budget=budget,
                         rollout_depth=rollout_depth, seed=seed,
                         max_inputs=max_inputs, incremental=incremental,
                         memoize=memoize, streaming=streaming,
                         backend=backend, workers=workers,
                         wave_size=wave_size, cache_dir=cache_dir,
                         reconcile_cache=reconcile_cache,
                         rollout_env=rollout_env,
                         action_space=action_space,
                         max_tag_points=max_tag_points,
                         plan_server=plan_server,
                         prune=prune, prior=prior,
                         restart_budget=restart_budget,
                         wave_timeout_s=wave_timeout_s,
                         rpc_timeout_s=rpc_timeout_s)
    if result_sink is not None:
        result_sink.append(result)
    # Replay the winner exactly the way the evaluator scored it: one
    # propagation fixed point per canonical action.  Applying all actions
    # first and propagating once could reach a different fixed point (a
    # later action's legality check would no longer see the propagated
    # state it was evaluated under), so the env would not realize
    # ``result.cost``.
    propagate(function, env, incremental=incremental)
    applied = 0
    for action in canonical_key(result.actions):
        if try_apply_action(function, env, action):
            env.record("tile", None, action[3],
                       f"auto {core_actions.decode_action(action)}")
            applied += 1
            # A skipped action needs no re-propagation: the env is already
            # at a fixed point and the evaluator's sweep after a skipped
            # apply provably changes nothing.
            propagate(function, env, incremental=incremental)
    return applied
