"""Relaxed fingerprints: canonicalization of traced functions.

The exact :func:`repro.auto.cache.function_fingerprint` hashes a traced
function *as written*: parameter order, traced op order, and every attr —
including pure labels like ``tag`` names — enter the digest.  That is the
right correctness tier for a persistent cache (nothing can ever collide),
but it makes near-identical programs share nothing: alpha-renaming a tag,
or tracing ``f(x, w)`` as ``f(w, x)``, produces a different fingerprint
for what is the same partitioning problem.

This module adds the **relaxed tier**: a canonicalization pass that

* renumbers values by a *stable topological order* derived from structural
  signatures (two rounds of Weisfeiler-Lehman-style refinement over the
  def-use graph: a bottom-up pass hashing each value's producing
  computation and a top-down pass hashing its consumers), so the traced
  order and the parameter order stop mattering,
* hashes only **cost-relevant attrs** (a ``tag``'s ``name``/``auto``
  markers are identity labels, not cost inputs — they are stripped), and
* renders the initial sharding state, the mesh and the device in the
  canonical numbering,

so alpha-renamed or input-permuted-but-isomorphic programs land on the
same relaxed key.  The exact fingerprint remains the correctness tier: a
relaxed hit serves a *plan* (re-validated by application), never a blind
cost override, and truly different programs (shapes, dtypes, mesh,
device, initial shardings) hash differently in both tiers.

Because a plan's actions reference *local* indices (parameter positions,
tag-point walk indices), a relaxed hit between two isomorphic programs
must translate indices through the canonical numbering:
:class:`CanonicalForm` carries the permutations and offers
``encode_key``/``decode_key`` to move canonical action sets between a
program's local index space and the shared canonical space.

Caveats (documented, deliberate): ops that are *mutually
indistinguishable* after two refinement rounds (structurally identical
subgraphs fed identical inputs) may order arbitrarily — swapping them is
cost-neutral by construction, which is all the relaxed tier promises.
Region bodies (e.g. ``scan``) canonicalize recursively with positional
carry parameters, since carries are semantically ordered.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.actions import PIPELINE, TILE_INPUT
from repro.core.pipeline import loop_ops
from repro.ir.function import Function
from repro.ir.tagpoints import tag_points

from repro.auto.cache import _canon
from repro.auto.tree import ActionKey, canonical_key

#: Attr keys stripped per opcode before hashing: pure identity labels with
#: no effect on lowering or cost.  ``tag`` markers are the only labelled
#: op today; extend this table if more appear.
COST_IRRELEVANT_ATTRS = {
    "tag": frozenset({"name", "auto"}),
}


def _h(*parts) -> bytes:
    """Stable structural hash of a tuple of parts (bytes pass through,
    everything else by ``repr``)."""
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part if isinstance(part, bytes)
                      else repr(part).encode())
        hasher.update(b"\x1f")
    return hasher.digest()


def _relaxed_attrs(op) -> tuple:
    """Canonical rendering of an op's cost-relevant attrs."""
    drop = COST_IRRELEVANT_ATTRS.get(op.opcode)
    attrs = op.attrs
    if drop:
        attrs = {k: v for k, v in attrs.items() if k not in drop}
    return _canon(attrs)


def _portable_or_none(env, value):
    if env is None:
        return None
    sharding = env.sharding(value)
    if sharding.is_fully_replicated() and not sharding.pinned:
        return None
    return sharding.to_portable()


class _FnCanon:
    """Canonical form of one function (or region body).

    ``param_order``/``op_order`` are the canonical orders;
    ``value_order`` is the full canonical value enumeration (params, then
    each canonical op's results, then — recursively — its regions'
    canonical values), the relaxed analogue of
    :func:`repro.core.sharding.enumerate_function_values`.
    """

    __slots__ = ("digest", "param_order", "op_order", "value_order")

    def __init__(self, digest, param_order, op_order, value_order):
        self.digest = digest
        self.param_order = param_order
        self.op_order = op_order
        self.value_order = value_order


def _canonicalize_fn(fn: Function, env, param_seeds: List[tuple],
                     region_cache: Dict[int, _FnCanon],
                     rounds: int = 2) -> _FnCanon:
    """Canonicalize one function level (recursing into regions)."""
    ops = fn.ops
    attrs_c = {id(op): _relaxed_attrs(op) for op in ops}
    region_canons: Dict[int, Tuple[_FnCanon, ...]] = {}
    for op in ops:
        canons = []
        for region in op.regions:
            cached = region_cache.get(id(region))
            if cached is None:
                seeds = [
                    ("rparam", i, p.type.shape, str(p.type.dtype),
                     _portable_or_none(env, p))
                    for i, p in enumerate(region.params)
                ]
                cached = _canonicalize_fn(region, env, seeds, region_cache,
                                          rounds)
                region_cache[id(region)] = cached
            canons.append(cached)
        region_canons[id(op)] = tuple(canons)

    uses: Dict[object, List[tuple]] = {}
    for op in ops:
        for pos, operand in enumerate(op.operands):
            uses.setdefault(operand, []).append((op, pos))
    rets: Dict[object, List[int]] = {}
    for i, result in enumerate(fn.results):
        rets.setdefault(result, []).append(i)

    # -- WL-style refinement: bottom-up then top-down, `rounds` times ------
    val_sig: Dict[object, bytes] = {}
    op_sig: Dict[int, bytes] = {}
    down_val: Dict[object, bytes] = {p: b"" for p in fn.params}
    for op in ops:
        for result in op.results:
            down_val[result] = b""
    for _ in range(max(rounds, 1)):
        for i, param in enumerate(fn.params):
            val_sig[param] = _h("param", param_seeds[i],
                                down_val.get(param, b""))
        for op in ops:
            sig = _h(
                "op", op.opcode, attrs_c[id(op)],
                tuple(val_sig.get(o, _h("ext", repr(o.type)))
                      for o in op.operands),
                tuple(c.digest for c in region_canons[id(op)]),
                len(op.results),
                down_val.get(op.results[0], b"") if op.results else b"",
            )
            op_sig[id(op)] = sig
            for j, result in enumerate(op.results):
                val_sig[result] = _h("res", sig, j, result.type.shape,
                                     str(result.type.dtype),
                                     _portable_or_none(env, result))
        # Top-down: each value's consumers, order-independent (sorted).
        down_op: Dict[int, bytes] = {}
        for op in reversed(ops):
            for result in op.results:
                items = [_h("use", down_op[id(c)], pos)
                         for c, pos in uses.get(result, ())]
                items += [_h("ret", i) for i in rets.get(result, ())]
                down_val[result] = _h("down", tuple(sorted(items)))
            down_op[id(op)] = _h(
                "dop", op.opcode, attrs_c[id(op)],
                tuple(down_val[r] for r in op.results),
            )
        for param in fn.params:
            items = [_h("use", down_op[id(c)], pos)
                     for c, pos in uses.get(param, ())]
            items += [_h("ret", i) for i in rets.get(param, ())]
            down_val[param] = _h("down", tuple(sorted(items)))

    final_val = {v: _h("fv", sig, down_val.get(v, b""))
                 for v, sig in val_sig.items()}
    final_op = {id(op): _h("fo", op_sig[id(op)],
                           tuple(final_val[r] for r in op.results))
                for op in ops}

    # -- canonical order: params by signature, ops by Kahn + signature -----
    param_order = sorted(range(len(fn.params)),
                         key=lambda i: (final_val[fn.params[i]], i))
    index: Dict[object, int] = {}
    value_order: List[object] = []

    def assign(value) -> None:
        index[value] = len(value_order)
        value_order.append(value)

    for i in param_order:
        assign(fn.params[i])

    # Readiness counts only *op-result* operands: params are assigned
    # before the loop starts and never "release".
    result_values = set()
    for op in ops:
        result_values.update(op.results)
    pending = {}
    dependents: Dict[object, List] = {}
    for op in ops:
        needed = {o for o in op.operands if o in result_values}
        pending[id(op)] = len(needed)
        for operand in needed:
            dependents.setdefault(operand, []).append(op)

    heap: List[tuple] = []
    seq = 0

    def push_ready(op) -> None:
        nonlocal seq
        operand_idx = tuple(index.get(o, -1) for o in op.operands)
        heapq.heappush(heap, (final_op[id(op)], operand_idx, seq, op))
        seq += 1

    for op in ops:
        if pending[id(op)] == 0:
            push_ready(op)
    op_order: List[object] = []
    released = set()
    while heap:
        _, _, _, op = heapq.heappop(heap)
        op_order.append(op)
        for result in op.results:
            assign(result)
        for canon in region_canons[id(op)]:
            for value in canon.value_order:
                assign(value)
        for result in op.results:
            if id(result) in released:
                continue
            released.add(id(result))
            for dependent in dependents.get(result, ()):
                pending[id(dependent)] -= 1
                if pending[id(dependent)] == 0:
                    push_ready(dependent)
    if len(op_order) != len(ops):  # cyclic/ill-formed: keep program order
        op_order = list(ops)
        value_order = list(fn.params)
        index = {p: i for i, p in enumerate(fn.params)}
        for op in ops:
            for result in op.results:
                assign(result)
            for canon in region_canons[id(op)]:
                for value in canon.value_order:
                    assign(value)

    # -- linearized digest --------------------------------------------------
    hasher = hashlib.blake2b(digest_size=16)

    def feed(payload) -> None:
        hasher.update(payload if isinstance(payload, bytes)
                      else repr(payload).encode())
        hasher.update(b"\x00")

    feed(("fn", len(fn.params), len(ops), len(fn.results)))
    for rank, i in enumerate(param_order):
        param = fn.params[i]
        feed(("param", rank, param.type.shape, str(param.type.dtype),
              param_seeds[i]))
    for op in op_order:
        feed(("op", op.opcode, attrs_c[id(op)],
              tuple(index.get(o, -1) for o in op.operands),
              tuple((index[r], r.type.shape, str(r.type.dtype))
                    for r in op.results)))
        for canon in region_canons[id(op)]:
            feed(("region", canon.digest))
    feed(("results", tuple(index.get(r, -1) for r in fn.results)))
    return _FnCanon(hasher.digest(), param_order, op_order, value_order)


@dataclasses.dataclass(frozen=True)
class CanonicalForm:
    """A function's relaxed fingerprint plus the index permutations needed
    to translate partition plans between its local index space and the
    canonical space shared by every isomorphic program.

    ``digest`` is the relaxed fingerprint (hex).  ``param_to_canon`` maps
    a local parameter index to its canonical rank (``canon_to_param`` is
    the inverse); ``tag_to_canon``/``canon_to_tag`` and
    ``loop_to_canon``/``canon_to_loop`` do the same for tag-point and
    loop-op indices (``PIPELINE`` actions address loops, not tags).
    Action-group prior keys (see
    :func:`repro.auto.evaluator.action_group_key`) are index-free and
    need no translation.
    """

    digest: str
    param_to_canon: Tuple[int, ...]
    canon_to_param: Tuple[int, ...]
    tag_to_canon: Tuple[int, ...]
    canon_to_tag: Tuple[int, ...]
    loop_to_canon: Tuple[int, ...] = ()
    canon_to_loop: Tuple[int, ...] = ()

    def _map_action(self, action, params, tags, loops):
        kind, index, dim, axis = action
        if kind == TILE_INPUT:
            if index >= len(params):
                raise IndexError(f"param index {index} out of range")
            return (kind, params[index], dim, axis)
        if kind == PIPELINE:
            if index >= len(loops):
                raise IndexError(f"loop index {index} out of range")
            return (kind, loops[index], dim, axis)
        if index >= len(tags):
            raise IndexError(f"tag index {index} out of range")
        return (kind, tags[index], dim, axis)

    def encode_key(self, key) -> ActionKey:
        """Local-space canonical action set -> canonical-space set."""
        return canonical_key([
            self._map_action(a, self.param_to_canon, self.tag_to_canon,
                             self.loop_to_canon)
            for a in key
        ])

    def decode_key(self, key) -> ActionKey:
        """Canonical-space action set -> this program's local space."""
        return canonical_key([
            self._map_action(a, self.canon_to_param, self.canon_to_tag,
                             self.canon_to_loop)
            for a in key
        ])


def canonicalize(function: Function, mesh, device=None,
                 env=None) -> CanonicalForm:
    """Canonicalize ``function`` in its search context.

    Hashes everything a partition plan's cost depends on — structure,
    shapes/dtypes, cost-relevant attrs, mesh, device, initial shardings —
    under the canonical renumbering, so isomorphic contexts share one
    digest (see the module docstring for what "isomorphic" means here).
    """
    region_cache: Dict[int, _FnCanon] = {}
    seeds = [
        ("seed", p.type.shape, str(p.type.dtype), _portable_or_none(env, p))
        for p in function.params
    ]
    canon = _canonicalize_fn(function, env, seeds, region_cache)
    index = {v: i for i, v in enumerate(canon.value_order)}

    hasher = hashlib.blake2b(digest_size=16)

    def feed(payload) -> None:
        hasher.update(repr(payload).encode())
        hasher.update(b"\x00")

    feed(("body", canon.digest))
    feed(("mesh", tuple(sorted(mesh.axes.items()))))
    if device is not None:
        feed(("device", _canon(dataclasses.asdict(device))
              if dataclasses.is_dataclass(device) else repr(device)))
    if env is not None:
        entries = []
        for value, i in index.items():
            portable = _portable_or_none(env, value)
            if portable is not None:
                entries.append((i, portable))
        feed(("env", tuple(sorted(entries))))

    param_to_canon = [0] * len(function.params)
    for rank, i in enumerate(canon.param_order):
        param_to_canon[i] = rank
    canon_to_param = [0] * len(function.params)
    for i, rank in enumerate(param_to_canon):
        canon_to_param[rank] = i

    points = tag_points(function)
    ranked = sorted(range(len(points)),
                    key=lambda i: index.get(points[i].value, -1))
    tag_to_canon = [0] * len(points)
    for rank, i in enumerate(ranked):
        tag_to_canon[i] = rank
    canon_to_tag = [0] * len(points)
    for i, rank in enumerate(tag_to_canon):
        canon_to_tag[rank] = i

    loops = loop_ops(function)
    loop_ranked = sorted(range(len(loops)),
                         key=lambda i: index.get(loops[i].results[0], -1))
    loop_to_canon = [0] * len(loops)
    for rank, i in enumerate(loop_ranked):
        loop_to_canon[i] = rank
    canon_to_loop = [0] * len(loops)
    for i, rank in enumerate(loop_to_canon):
        canon_to_loop[rank] = i

    return CanonicalForm(
        digest=hasher.hexdigest(),
        param_to_canon=tuple(param_to_canon),
        canon_to_param=tuple(canon_to_param),
        tag_to_canon=tuple(tag_to_canon),
        canon_to_tag=tuple(canon_to_tag),
        loop_to_canon=tuple(loop_to_canon),
        canon_to_loop=tuple(canon_to_loop),
    )


def relaxed_fingerprint(function: Function, mesh, device=None,
                        env=None) -> str:
    """The relaxed fingerprint alone (see :func:`canonicalize`)."""
    return canonicalize(function, mesh, device, env).digest
