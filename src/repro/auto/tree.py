"""The MCTS tree: UCT nodes, virtual loss, RNG streams, action-group priors.

The search state is a *set* of actions (wire tuples ``(kind, index, dim,
axis)``; see :mod:`repro.core.actions`); a tree node's path from the root
spells one ordering of such a set.  Three policies live here:

* **UCT selection** (:meth:`Node.uct_child`) with an optional **virtual
  loss**: while a leaf's evaluation is in flight (the batched and process
  schedulers keep a whole wave in flight at once), every node on its path
  counts one extra zero-reward visit.  That depresses both the mean and the
  exploration bonus along the path, steering the next selection of the same
  wave toward a *different* leaf instead of re-picking the busiest one.
  With no losses applied (the serial scheduler), the score reduces exactly
  to the classic UCT formula — serial behavior is bit-identical.
* **Per-rollout RNG streams** (:meth:`Node.draw_rng`): each rollout draws
  from a private ``random.Random`` seeded by a stable hash of
  ``(seed, node_id, draw index)`` instead of advancing one shared stream.
  A node's id is derived from its position (depth, action, canonical action
  set), never from object identity or creation order, so the stream a
  rollout consumes is independent of which backend — or which worker
  wave — happened to run it; interleaving evaluations can never perturb
  another rollout's randomness.
* **Action-group priors** (:meth:`TreePolicy.note_result` /
  :meth:`TreePolicy._select_untried`): visit/value statistics aggregated
  per action *group* — ``(action kind, dim, axis, sharding signature)``,
  see :func:`repro.auto.evaluator.action_group_key` — seed UCT for
  unvisited children.  Every search accumulates live statistics (persisted
  afterwards via :meth:`repro.auto.cache.TranspositionTable.store_priors`),
  but expansion is steered only by groups with **warm-started** statistics
  loaded from a persistent store: a cold search expands uniformly at
  random, draw-for-draw identical to the prior-free policy (preserving the
  cross-backend best-agreement regression property — warm priors are a
  fixed input every scheduler shares, while live in-run priors would
  couple expansion to wave timing).  On a warm run, untried actions whose
  group is unknown are expanded first (optimistic first-play urgency,
  uniformly among themselves); once every untried action's group is
  known, expansion picks the group with the best warm mean reward, with
  exact ties broken through the node's RNG stream (live statistics are
  recorded for persistence but never read during selection — see
  :meth:`TreePolicy._prior_mean`).  With the default ``prior="learned"``
  mode, the flat warm means are replaced by a
  :class:`repro.auto.prior.LinearPrior` — a feature-hashed linear model
  fit *once, at search start* from the same warm statistics (so it too is
  a fixed input every backend shares) that scores every grouped action,
  including groups the log never saw.  This is how repeated
  ``partir_jit`` calls reuse the
  *tree* — not just exact costs — across calls; ``tree_prior_hits``
  counts expansions steered by warm-started statistics.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.auto.prior import PRIOR_MODES, LinearPrior

# An action wire tuple: (kind, index, dim, axis) — see repro.core.actions.
# None is STOP.
Action = Optional[Tuple[int, int, int, str]]
ActionKey = Tuple[Tuple[int, int, int, str], ...]


def canonical_key(actions: Sequence[Tuple[int, int, int, str]]) -> ActionKey:
    """Canonical form of an action sequence: sorted, deduped tuple."""
    return tuple(sorted(set(actions)))


def _stable_hash(payload) -> int:
    """Process-independent 64-bit hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(repr(payload).encode(), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class Node:
    __slots__ = ("action", "parent", "children", "visits", "total",
                 "untried", "action_set", "depth", "node_id", "draws",
                 "virtual_loss", "tour_path")

    def __init__(self, action: Action, parent: Optional["Node"],
                 untried: List[Action]):
        self.action = action
        self.parent = parent
        self.children: List[Node] = []
        self.visits = 0
        self.total = 0.0
        self.virtual_loss = 0
        self.untried = list(untried)
        self.draws = 0
        # O(1) membership for "is this action already on my path" — replaces
        # the former O(n) list scans over the prefix.
        base: FrozenSet = parent.action_set if parent is not None else frozenset()
        self.action_set: FrozenSet = (
            base | {action} if action is not None else base
        )
        self.depth = parent.depth + 1 if parent is not None else 0
        # Position of this node in the tree's Euler tour: the sequence of
        # child indices from the root.  Sorting leaves by ``tour_path``
        # (lexicographic) lays a wave out in depth-first tree order, so
        # consecutive rollouts come from neighboring subtrees — the
        # prefix-aware wave ordering the schedulers use to keep the undo
        # engine's rollback/extend distance short.  A node is constructed
        # *before* being appended to ``parent.children``, so its index is
        # ``len(parent.children)`` at construction time; expansion order is
        # deterministic per seed, hence so is the tour.
        self.tour_path: Tuple[int, ...] = (
            parent.tour_path + (len(parent.children),)
            if parent is not None else ()
        )
        self.node_id = _stable_hash(
            (self.depth, action, tuple(sorted(self.action_set)))
        )

    def path(self) -> List[Tuple[int, int, int, str]]:
        node, actions = self, []
        while node.parent is not None:
            if node.action is not None:
                actions.append(node.action)
            node = node.parent
        return list(reversed(actions))

    def draw_rng(self, seed: int) -> random.Random:
        """The RNG stream for this node's next rollout (see module doc)."""
        self.draws += 1
        return random.Random(_stable_hash((seed, self.node_id, self.draws)))

    def uct_child(self, exploration: float) -> "Node":
        log_n = math.log(max(self.visits + self.virtual_loss, 1))
        def score(c: "Node") -> float:
            n = max(c.visits + c.virtual_loss, 1)
            return c.total / n + exploration * math.sqrt(log_n / n)
        return max(self.children, key=score)

    def apply_virtual_loss(self) -> None:
        """Mark this leaf's evaluation as in flight: one pessimistic
        (zero-reward) visit on every node up to the root."""
        node = self
        while node is not None:
            node.virtual_loss += 1
            node = node.parent

    def revert_virtual_loss(self) -> None:
        node = self
        while node is not None:
            node.virtual_loss -= 1
            node = node.parent

    def backup(self, reward: float) -> None:
        node = self
        while node is not None:
            node.visits += 1
            node.total += reward
            node = node.parent


class TreePolicy:
    """Selection + expansion + rollout generation over one search tree.

    Owns no evaluation: :meth:`next_rollout` returns the leaf it stopped at
    and the canonical action set to score, and the scheduler later calls
    ``leaf.backup(reward)`` and :meth:`note_result`.  Between the two, a
    scheduler keeping several rollouts in flight brackets each leaf with
    ``apply_virtual_loss``/``revert_virtual_loss``.

    ``group_keys`` maps each candidate action to its prior group (see the
    module docstring); ``warm_priors`` maps groups to ``(visits, total
    reward)`` pairs loaded from a persistent store.  Without either, the
    policy is the classic uniform-expansion UCT, draw for draw.
    """

    def __init__(self, candidates: Sequence[Tuple[int, int, int, str]],
                 seed: int, exploration: float, rollout_depth: int,
                 group_keys: Optional[Dict] = None,
                 warm_priors: Optional[Dict] = None,
                 prior: str = "learned"):
        if prior not in PRIOR_MODES:
            raise ValueError(
                f"unknown prior {prior!r}; expected one of {PRIOR_MODES}"
            )
        self.candidates = list(candidates)
        self.seed = seed
        self.exploration = exploration
        self.rollout_depth = rollout_depth
        self.root = Node(None, None, [None] + self.candidates)
        self.group_keys: Dict = dict(group_keys or {})
        self.warm_priors: Dict = dict(warm_priors or {})
        #: Which warm-expansion scorer steers the tree (see
        #: :mod:`repro.auto.prior`): ``"learned"`` fits the feature-hashed
        #: linear model from the warm statistics once, here — part of the
        #: seeded deterministic state, identical in every backend;
        #: ``"group"`` keeps the flat warm means; ``"none"`` ignores warm
        #: statistics for expansion (they still accumulate and persist).
        self.prior_mode = prior
        self.prior_model: Optional[LinearPrior] = (
            LinearPrior.fit(self.warm_priors)
            if prior == "learned" and self.warm_priors else None
        )
        #: group -> [visits, total reward], accumulated by note_result
        #: during this search (the delta persisted after the run).
        self.live_stats: Dict[object, list] = {}
        #: Expansions whose prior-guided choice used warm-started stats.
        self.tree_prior_hits = 0
        #: Distinct candidate groups covered by warm-started statistics.
        self.prior_groups = len({
            self.group_keys[a] for a in self.candidates
            if self.group_keys.get(a) in self.warm_priors
        })

    # -- action-group priors -------------------------------------------------

    def note_result(self, key: ActionKey, reward: float) -> None:
        """Fold one scored rollout into the per-group statistics: every
        action of the canonical set shares the set's reward (the group's
        mean then estimates 'how good are sets containing this kind of
        decision' — the prior that seeds expansion)."""
        group_keys = self.group_keys
        stats = self.live_stats
        for action in key:
            group = group_keys.get(action)
            if group is None:
                continue
            entry = stats.get(group)
            if entry is None:
                stats[group] = [1, reward]
            else:
                entry[0] += 1
                entry[1] += reward

    def _prior_mean(self, group) -> Optional[float]:
        """Mean reward of a group over its *warm* (persisted) statistics,
        or None when it has none.

        Expansion is steered exclusively by warm statistics — a fixed
        input every scheduler shares for the whole run.  Live statistics
        are accumulated for persistence (:meth:`note_result`) but never
        read during selection: folding them in would couple expansion
        order to each scheduler's wave timing (serial updates after every
        rollout, batched/process after whole waves), making even warm runs
        backend-dependent.  A cold search has no warm statistics at all
        and expands uniformly at random — draw-for-draw identical to the
        prior-free policy, which is what keeps the cross-backend
        best-agreement property of the regression suite intact.
        """
        warm = self.warm_priors.get(group)
        if warm is None or warm[0] == 0:
            return None
        return warm[1] / warm[0]

    def _prior_score(self, action: Action) -> Optional[float]:
        """The warm-expansion score of one untried action, or None when no
        warm signal covers it (then it joins the optimistic-first pool).

        ``"group"`` mode scores only groups with exact warm statistics
        (:meth:`_prior_mean`); ``"learned"`` mode scores *every* grouped
        action through the fitted :class:`~repro.auto.prior.LinearPrior`
        — hashed features generalize warm statistics to groups the log
        never saw; ``"none"`` scores nothing.  STOP has no group and is
        never scored, so it keeps its optimistic first expansion.  On a
        cold run no mode has any warm input and every action scores None
        — the uniform draw-for-draw guarantee is mode-independent.
        """
        if action is None:
            return None
        group = self.group_keys.get(action)
        if group is None:
            return None
        if self.prior_mode == "group":
            return self._prior_mean(group)
        if self.prior_mode == "learned" and self.prior_model is not None:
            return self.prior_model.score(group)
        return None

    def _select_untried(self, untried: List[Action],
                        rng: random.Random) -> int:
        """Index of the untried action to expand next (see module doc).

        Actions without a warm score (including STOP, which never
        appears inside a scored set) are optimistically expanded first,
        uniformly at random — on a cold run that is every action, so the
        draw is bit-identical to the classic uniform policy.  Otherwise
        the best score wins, with exact ties (e.g. several actions of one
        group) broken through the same RNG stream.
        """
        unknown: List[int] = []
        best_mean: Optional[float] = None
        ties: List[int] = []
        for i, action in enumerate(untried):
            mean = self._prior_score(action)
            if mean is None:
                unknown.append(i)
            elif not unknown:
                if best_mean is None or mean > best_mean:
                    best_mean = mean
                    ties = [i]
                elif mean == best_mean:
                    ties.append(i)
        if unknown:
            return unknown[rng.randrange(len(unknown))]
        chosen = ties[rng.randrange(len(ties))]
        # Reaching here means every untried action's group had warm
        # statistics and they decided the choice: a tree-reuse hit.
        self.tree_prior_hits += 1
        return chosen

    # -- rollout generation --------------------------------------------------

    def next_rollout(self) -> Tuple[Node, ActionKey]:
        node = self.root
        # Selection.
        while not node.untried and node.children:
            node = node.uct_child(self.exploration)
        rng = node.draw_rng(self.seed)
        # Expansion (prior-seeded; see _select_untried).
        if node.untried:
            action = node.untried.pop(self._select_untried(node.untried, rng))
            child = Node(action, node, [])
            if action is not None:
                child.untried = [None] + [
                    a for a in self.candidates if a not in child.action_set
                ]
            node.children.append(child)
            node = child
        # Rollout.  The random completion respects the remaining depth
        # budget: ``rollout_depth`` bounds the whole scored set, not just
        # the completion, so a node already at (or past) the depth budget
        # scores its *exact* action set.  An unbounded completion would
        # instead pad deep leaves with up to ``rollout_depth`` random extra
        # actions — against a condensed candidate list (no redundant
        # no-op padding left; see :mod:`repro.auto.prune`) that dilutes
        # every deep evaluation with noise and the exact optimum may never
        # be scored at all.
        actions = node.path()
        remaining = max(self.rollout_depth - len(actions), 0)
        depth = rng.randrange(remaining + 1)
        pool = [a for a in self.candidates if a not in node.action_set]
        rng.shuffle(pool)
        return node, canonical_key(actions + pool[:depth])
