"""The MCTS tree: UCT nodes, virtual loss, and per-rollout RNG streams.

The search state is a *set* of tile actions; a tree node's path from the
root spells one ordering of such a set.  Two policies live here:

* **UCT selection** (:meth:`Node.uct_child`) with an optional **virtual
  loss**: while a leaf's evaluation is in flight (the batched and process
  schedulers keep a whole wave in flight at once), every node on its path
  counts one extra zero-reward visit.  That depresses both the mean and the
  exploration bonus along the path, steering the next selection of the same
  wave toward a *different* leaf instead of re-picking the busiest one.
  With no losses applied (the serial scheduler), the score reduces exactly
  to the classic UCT formula — serial behavior is bit-identical.
* **Per-rollout RNG streams** (:meth:`Node.draw_rng`): each rollout draws
  from a private ``random.Random`` seeded by a stable hash of
  ``(seed, node_id, draw index)`` instead of advancing one shared stream.
  A node's id is derived from its position (depth, action, canonical action
  set), never from object identity or creation order, so the stream a
  rollout consumes is independent of which backend — or which worker
  wave — happened to run it; interleaving evaluations can never perturb
  another rollout's randomness.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import FrozenSet, List, Optional, Sequence, Tuple

# An action: (input_index, dim, axis). None is STOP.
Action = Optional[Tuple[int, int, str]]
ActionKey = Tuple[Tuple[int, int, str], ...]


def canonical_key(actions: Sequence[Tuple[int, int, str]]) -> ActionKey:
    """Canonical form of an action sequence: sorted, deduped tuple."""
    return tuple(sorted(set(actions)))


def _stable_hash(payload) -> int:
    """Process-independent 64-bit hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(repr(payload).encode(), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class Node:
    __slots__ = ("action", "parent", "children", "visits", "total",
                 "untried", "action_set", "depth", "node_id", "draws",
                 "virtual_loss")

    def __init__(self, action: Action, parent: Optional["Node"],
                 untried: List[Action]):
        self.action = action
        self.parent = parent
        self.children: List[Node] = []
        self.visits = 0
        self.total = 0.0
        self.virtual_loss = 0
        self.untried = list(untried)
        self.draws = 0
        # O(1) membership for "is this action already on my path" — replaces
        # the former O(n) list scans over the prefix.
        base: FrozenSet = parent.action_set if parent is not None else frozenset()
        self.action_set: FrozenSet = (
            base | {action} if action is not None else base
        )
        self.depth = parent.depth + 1 if parent is not None else 0
        self.node_id = _stable_hash(
            (self.depth, action, tuple(sorted(self.action_set)))
        )

    def path(self) -> List[Tuple[int, int, str]]:
        node, actions = self, []
        while node.parent is not None:
            if node.action is not None:
                actions.append(node.action)
            node = node.parent
        return list(reversed(actions))

    def draw_rng(self, seed: int) -> random.Random:
        """The RNG stream for this node's next rollout (see module doc)."""
        self.draws += 1
        return random.Random(_stable_hash((seed, self.node_id, self.draws)))

    def uct_child(self, exploration: float) -> "Node":
        log_n = math.log(max(self.visits + self.virtual_loss, 1))
        def score(c: "Node") -> float:
            n = max(c.visits + c.virtual_loss, 1)
            return c.total / n + exploration * math.sqrt(log_n / n)
        return max(self.children, key=score)

    def apply_virtual_loss(self) -> None:
        """Mark this leaf's evaluation as in flight: one pessimistic
        (zero-reward) visit on every node up to the root."""
        node = self
        while node is not None:
            node.virtual_loss += 1
            node = node.parent

    def revert_virtual_loss(self) -> None:
        node = self
        while node is not None:
            node.virtual_loss -= 1
            node = node.parent

    def backup(self, reward: float) -> None:
        node = self
        while node is not None:
            node.visits += 1
            node.total += reward
            node = node.parent


class TreePolicy:
    """Selection + expansion + rollout generation over one search tree.

    Owns no evaluation: :meth:`next_rollout` returns the leaf it stopped at
    and the canonical action set to score, and the scheduler later calls
    ``leaf.backup(reward)``.  Between the two, a scheduler keeping several
    rollouts in flight brackets each leaf with
    ``apply_virtual_loss``/``revert_virtual_loss``.
    """

    def __init__(self, candidates: Sequence[Tuple[int, int, str]],
                 seed: int, exploration: float, rollout_depth: int):
        self.candidates = list(candidates)
        self.seed = seed
        self.exploration = exploration
        self.rollout_depth = rollout_depth
        self.root = Node(None, None, [None] + self.candidates)

    def next_rollout(self) -> Tuple[Node, ActionKey]:
        node = self.root
        # Selection.
        while not node.untried and node.children:
            node = node.uct_child(self.exploration)
        rng = node.draw_rng(self.seed)
        # Expansion.
        if node.untried:
            action = node.untried.pop(rng.randrange(len(node.untried)))
            child = Node(action, node, [])
            if action is not None:
                child.untried = [None] + [
                    a for a in self.candidates if a not in child.action_set
                ]
            node.children.append(child)
            node = child
        # Rollout.
        actions = node.path()
        depth = rng.randrange(self.rollout_depth + 1)
        pool = [a for a in self.candidates if a not in node.action_set]
        rng.shuffle(pool)
        return node, canonical_key(actions + pool[:depth])
