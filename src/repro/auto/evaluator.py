"""Scoring canonical action sets: the prefix-env + streaming-estimator pipeline.

The evaluator is the purity boundary the whole search subsystem leans on:
``evaluate(actions)`` is a pure function of the canonical action set (given
the function, initial env, mesh and device), independent of the order the
tree discovered the set in and of which process runs the evaluation.  The
scheduler exploits that purity to run evaluations serially, in batched
waves, or fanned across worker processes — and the transposition table
(:mod:`repro.auto.cache`) to reuse scores across whole searches.

Purity is also the **recovery argument** of the fault-tolerant fabric
(:mod:`repro.auto.faults`, the self-healing schedulers): a rollout lost to
a dead worker or a reset connection is not state to reconstruct, just a
key to re-evaluate — on a re-forked worker, a reconnected server session,
or the main process itself — and the re-execution is bit-identical to
what the lost worker would have returned.  That is why the degradation
contract ("any fault schedule, same best actions/cost as the fault-free
serial run") holds by construction rather than by careful replication.

Speed layers, all exact:

* a **prefix env cache**: the propagated :class:`ShardingEnv` for each
  canonical prefix is memoized, so scoring a set extends its longest cached
  prefix with one incremental-propagation fixed point per new action rather
  than replaying the prefix from scratch, and
* a **streaming cost evaluator** (``streaming=True``):
  :class:`repro.sim.costmodel.StreamingEstimator` prices the lowering
  stream directly — per-op lowering plans and whole reconcile-chain costs
  are memoized on sharding signatures, so an evaluation re-plans only what
  changed since any previous evaluation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import actions as actions_mod
from repro.core import pipeline as pipeline_mod
from repro.core.actions import (
    PIPELINE,
    SUM_TAGGED,
    TILE_INPUT,
    TILE_TAGGED,
    tile_legal,
)
from repro.core.propagate import propagate
from repro.core.sharding import ShardingEnv
from repro.ir.function import Function
from repro.ir.tagpoints import tag_points
from repro.sim import costmodel
from repro.sim.devices import DeviceSpec
from repro.spmd.fusion import fuse_collectives
from repro.spmd.lower import lower

from repro.auto.cache import TranspositionTable
from repro.auto.tree import ActionKey, canonical_key

#: Valid action spaces: ``"inputs"`` is the classic input-tilings-only
#: space; ``"tagged"`` (default) additionally enumerates mid-function
#: ``TileTagged``/``SumTagged`` actions at the function's tag points.
ACTION_SPACES = ("inputs", "tagged")


def action_legal(env: ShardingEnv, value, dim: int, axis: str) -> bool:
    """May ``value``'s ``dim`` still be tiled along ``axis`` under ``env``?
    (Alias of :func:`repro.core.actions.tile_legal`.)"""
    return tile_legal(env, value, dim, axis)


def candidate_actions(function: Function, env: ShardingEnv,
                      axes: Sequence[str],
                      max_inputs: int = 48,
                      action_space: str = "tagged",
                      max_tag_points: int = 16,
                      truncation: Optional[Dict[str, int]] = None
                      ) -> List[Tuple[int, int, int, str]]:
    """Enumerate the legal actions of the (possibly widened) action space.

    Actions are uniform wire tuples ``(kind, index, dim, axis)`` — see the
    kind table in :mod:`repro.core.actions`.  The enumeration order is a
    **documented total order** over the widened space:

    1. **Input tilings** (``TILE_INPUT``): parameters by ``(nbytes
       descending, param index ascending)``, capped at ``max_inputs``;
       per parameter by ``(axis in the caller's given order, dim
       ascending)``.  A parameter value bound to several function inputs
       is enumerated once, at its smallest index.
    2. **Tag-point actions** (``action_space="tagged"`` only): tag points
       by ``(tagged-value nbytes descending, tag-point index ascending)``,
       capped at ``max_tag_points``; per point by ``(axis in the caller's
       given order)``, within an axis first ``TileTagged`` with dim
       ascending, then ``SumTagged`` with reduce-factor index ascending.
       Tag points sharing one underlying value (e.g. a manual
       ``ops.tag`` stacked over the tracer's auto tag — same ``root``)
       are enumerated once, at the smallest tag-point index: the
       duplicates' actions would be propagation-identical, wasting budget
       and splitting the prior statistics across equivalent groups.
       Distinct results of one multi-result op (scan carries) have
       distinct roots and are all enumerated.
    3. **Pipeline actions** (``action_space="tagged"`` only): loop ops by
       canonical pre-order walk index
       (:func:`repro.core.pipeline.loop_ops`); per loop by ``(axis in the
       caller's given order, schedule id ascending)``.  Only loops whose
       body can legally pipeline over the axis (see
       :func:`repro.core.pipeline.pipeline_legal`) are enumerated.

    Both nbytes ties are explicitly broken by index, so the candidate list
    (and everything seeded from it: node ids, rollout RNG streams,
    fixed-seed search results) is independent of sort-stability details.
    Only actions legal at the *root* env are enumerated; legality is
    re-checked at application time, since earlier actions in a set may
    consume an axis.

    Both caps can silently narrow the space; when ``truncation`` is a
    dict, the number of parameters/tag points dropped by each cap is
    reported into its ``"inputs"``/``"tag_points"`` keys so callers can
    surface the drop (the repo's no-silent-caps convention —
    :func:`repro.auto.search.mcts_search` warns once per process and
    records ``SearchResult.actions_truncated``).
    """
    if action_space not in ACTION_SPACES:
        raise ValueError(
            f"unknown action_space {action_space!r}; "
            f"expected one of {ACTION_SPACES}"
        )
    if truncation is not None:
        truncation.setdefault("inputs", 0)
        truncation.setdefault("tag_points", 0)
    seen_values = set()
    ranked = []
    for index, param in enumerate(function.params):
        if param in seen_values:
            continue
        seen_values.add(param)
        ranked.append((index, param))
    ranked.sort(key=lambda pair: (-pair[1].type.nbytes, pair[0]))
    if truncation is not None and len(ranked) > max_inputs:
        truncation["inputs"] = len(ranked) - max_inputs
    actions = []
    for index, param in ranked[:max_inputs]:
        for axis in axes:
            for dim in range(len(param.type.shape)):
                if tile_legal(env, param, dim, axis):
                    actions.append((TILE_INPUT, index, dim, axis))
    if action_space != "tagged":
        return actions
    seen_roots = set()
    points = []
    for point in tag_points(function):
        # One point per underlying value: stacked markers share a root
        # (propagation-identical actions), while distinct results of one
        # multi-result op (scan carries) have distinct roots and all stay
        # enumerable.
        if point.root in seen_roots:
            continue
        seen_roots.add(point.root)
        points.append(point)
    points.sort(key=lambda p: (-p.value.type.nbytes, p.index))
    if truncation is not None and len(points) > max_tag_points:
        truncation["tag_points"] = len(points) - max_tag_points
    for point in points[:max_tag_points]:
        for axis in axes:
            for dim in range(len(point.value.type.shape)):
                if tile_legal(env, point.value, dim, axis):
                    actions.append((TILE_TAGGED, point.index, dim, axis))
            if point.source is not None:
                factors = actions_mod.reduce_factors(point.source)
                for f, factor in enumerate(factors):
                    if actions_mod.sum_tagged_legal(env, point.source,
                                                    factor, axis):
                        actions.append((SUM_TAGGED, point.index, f, axis))
    for loop_index, loop_op in enumerate(pipeline_mod.loop_ops(function)):
        for axis in axes:
            for schedule_id, schedule in enumerate(pipeline_mod.SCHEDULES):
                if pipeline_mod.pipeline_legal(env, loop_op, axis, schedule):
                    actions.append((PIPELINE, loop_index, schedule_id, axis))
    return actions


def action_group_key(function: Function, env: ShardingEnv,
                     action: Tuple[int, int, int, str]) -> tuple:
    """The action's *group key* ``(kind, op kind, dim, axis, sharding
    signature)``.

    Action-group priors aggregate visit/value statistics per group: two
    actions share a group when they are the same kind of decision (same
    kind/dim-or-factor/axis) applied to the same kind of op (the tag
    point's source opcode; ``"param"`` for input tilings) in the same
    initial sharding state.  The signature is the target value's portable
    sharding under the search's initial env, so keys are
    process-independent and JSON-serializable — the persistence format of
    :meth:`repro.auto.cache.TranspositionTable.store_priors`.  The op
    kind is also what the learned prior's hashed features
    (:meth:`repro.auto.prior.LinearPrior.features`) generalize over.
    """
    kind, index, dim, axis = action
    if kind == TILE_INPUT:
        target = function.params[index]
        op_kind = "param"
    elif kind == PIPELINE:
        loop_op = pipeline_mod.loop_ops(function)[index]
        target = loop_op.results[0]
        op_kind = loop_op.opcode
    else:
        point = tag_points(function)[index]
        target = point.value
        op_kind = point.op_kind
    return (kind, op_kind, dim, axis, env.sharding(target).to_portable())


def try_apply_action(function: Function, env: ShardingEnv,
                     action: Tuple[int, int, int, str]) -> bool:
    """Apply one action if it is still legal under ``env``.

    Dispatches on the action kind (see :mod:`repro.core.actions`);
    returns False — leaving the env untouched — when the action is no
    longer legal (an earlier action in the canonical set already consumed
    the axis, or propagation already tiled the target).
    """
    kind, index, dim, axis = action
    if kind == TILE_INPUT:
        value = function.params[index]
    elif kind == TILE_TAGGED:
        points = tag_points(function)
        if index >= len(points):
            return False
        value = points[index].value
    elif kind == SUM_TAGGED:
        target = actions_mod.sum_target(function, index, dim)
        if target is None:
            return False
        op, factor = target
        if not actions_mod.sum_tagged_legal(env, op, factor, axis):
            return False
        actions_mod.apply_sum_tagged(env, op, factor, axis)
        return True
    elif kind == PIPELINE:
        loops = pipeline_mod.loop_ops(function)
        if index >= len(loops) or dim >= len(pipeline_mod.SCHEDULES):
            return False
        schedule = pipeline_mod.SCHEDULES[dim]
        if not pipeline_mod.pipeline_legal(env, loops[index], axis, schedule):
            return False
        pipeline_mod.apply_pipeline(env, loops[index], axis, schedule)
        return True
    else:
        return False
    if not tile_legal(env, value, dim, axis):
        return False
    env.set_sharding(value, env.sharding(value).with_tile(dim, axis))
    return True


#: Valid rollout env engines (see :class:`Evaluator`).
ROLLOUT_ENVS = ("undo", "fork")


class Evaluator:
    """Scores canonical action sets; owns the memoization layers.

    ``table`` is the transposition table consulted when ``memoize`` is on;
    passing a shared (possibly disk-backed) table lets the scheduler and
    repeated searches pool their scores.  The evaluator itself stays cheap
    to construct in a worker process: everything it needs travels as
    ``(function, mesh, portable env state, device, flags)``.

    ``rollout_env`` picks the engine that maintains per-prefix env state:

    * ``"undo"`` (default) — one mutable env plus an undo log
      (:meth:`~repro.core.sharding.ShardingEnv.checkpoint` /
      ``rollback``).  Scoring a set retracts to the longest common prefix
      with the previous set and extends in place — zero env allocation per
      rollout.  Re-extending a previously-propagated prefix replays its
      memoized write delta instead of re-running the propagation fixed
      point, and the streaming estimator re-prices only ops adjacent to
      the env's write journal
      (:meth:`~repro.sim.costmodel.StreamingEstimator.estimate_incremental`).
    * ``"fork"`` — the classic PR 3 engine: each canonical prefix gets its
      own propagated env, forked from its parent with the O(delta) overlay
      ``copy()``, and every evaluation runs a full streaming walk.

    Both engines produce bit-identical costs (property-tested): prefix env
    state is a pure function of the canonical prefix either way.
    """

    def __init__(self, function: Function, env: ShardingEnv,
                 device: DeviceSpec, incremental: bool = True,
                 memoize: bool = True, streaming: bool = True,
                 reconcile_cache: bool = True,
                 table: Optional[TranspositionTable] = None,
                 rollout_env: str = "undo"):
        if rollout_env not in ROLLOUT_ENVS:
            raise ValueError(
                f"unknown rollout_env {rollout_env!r}; "
                f"expected one of {ROLLOUT_ENVS}"
            )
        self.function = function
        self.device = device
        self.incremental = incremental
        self.memoize = memoize
        self.streaming = streaming
        self.rollout_env = rollout_env
        self.evaluations = 0
        self.lower_calls = 0
        self.propagate_time_s = 0.0
        self.estimate_time_s = 0.0
        #: Work done by remote workers on this evaluator's behalf (the
        #: process scheduler aggregates each wave's counter deltas here,
        #: so SearchResult reflects worker-side cache behavior too).
        self.remote_ops_processed = 0
        self.remote_propagate_calls = 0
        self.remote_ops_reused = 0
        self.remote_reconcile_hits = 0
        self.remote_shared_plan_hits = 0
        self.remote_shared_full = False
        #: Undo-engine prefix accounting: of all the actions the rollouts
        #: asked to stand applied (summed |key| over ``_env_for_undo``
        #: calls), how many were already in place on the action stack and
        #: survived (no rollback, no re-apply)?  The ratio is the
        #: schedulers' prefix-aware wave ordering's figure of merit —
        #: surfaced as ``SearchResult.prefix_reuse_ratio``.
        self.prefix_actions_total = 0
        self.prefix_actions_reused = 0
        self.remote_prefix_actions_total = 0
        self.remote_prefix_actions_reused = 0
        self.table = table if table is not None else TranspositionTable()
        #: The full CostEstimate of the most recent :meth:`compute` (None
        #: before the first).  The branch-and-bound solver
        #: (:mod:`repro.auto.exact`) reads its compute/peak-memory terms
        #: for admissible subtree bounds; the search itself never does.
        self.last_estimate = None
        self._env_cache: Dict[ActionKey, ShardingEnv] = {}
        # One streaming estimator for the whole search: its per-op plan and
        # reconcile-chain memos are what let an evaluation reuse the
        # lowering decisions of every previously-scored env that agrees on
        # an op's neighborhood.
        self._estimator = costmodel.StreamingEstimator(
            function, env.mesh, device, reconcile_cache=reconcile_cache
        ) if streaming else None
        # Root fixed point: search never mutates the caller's env.  The
        # event log is dropped — evaluation envs never read it, and every
        # cached prefix env would otherwise re-copy the whole history.
        self.root = env.copy(with_events=False)
        propagate(function, self.root, incremental=incremental)
        # Undo-engine state: the action stack mirrors the env's applied
        # prefix (one checkpoint per level), and the propagation-delta memo
        # replays previously-computed fixed points on re-extension.
        self._stack: List[Tuple[Tuple[int, int, int, str], object]] = []
        self._prop_memo: Dict[ActionKey, Tuple] = {}
        if rollout_env == "undo" and streaming:
            # The journal's only consumer is the incremental streaming
            # estimator; the materializing path must not accumulate one.
            self.root.enable_journal()

    @property
    def cache_hits(self) -> int:
        return self.table.hits

    @property
    def estimate_ops_reused(self) -> int:
        local = self._estimator.ops_reused if self._estimator else 0
        return local + self.remote_ops_reused

    @property
    def reconcile_chain_hits(self) -> int:
        local = self._estimator.reconcile_hits if self._estimator else 0
        return local + self.remote_reconcile_hits

    @property
    def shared_plan_hits(self) -> int:
        """Plans/chains this process served from the cross-worker store."""
        return self._estimator.shared_plan_hits if self._estimator else 0

    @property
    def shared_memo_full(self) -> bool:
        """Did the cross-worker shared memo's fixed-size segment fill —
        here or (``remote_shared_full``) in any worker?  Once full, cold
        plans computed after the fill are no longer pooled across
        processes; correctness is unaffected."""
        estimator = self._estimator
        if (estimator is not None and estimator._shared is not None
                and estimator._shared.full):
            return True
        return self.remote_shared_full

    @property
    def prefix_reuse_ratio(self) -> float:
        """Fraction of requested prefix actions the undo engine kept in
        place across consecutive evaluations (workers included); 0.0 when
        nothing was evaluated or on the fork engine."""
        total = self.prefix_actions_total + self.remote_prefix_actions_total
        reused = (self.prefix_actions_reused
                  + self.remote_prefix_actions_reused)
        return reused / total if total else 0.0

    def _env_for(self, key: ActionKey) -> ShardingEnv:
        """Propagated env for a canonical action prefix.

        Fork engine: recursively extends the env of ``key[:-1]`` by one
        action + one propagation fixed point, reusing cached prefixes when
        memoizing.  Undo engine: retracts/extends the single mutable env
        (:meth:`_env_for_undo`).
        """
        if self.rollout_env == "undo":
            return self._env_for_undo(key)
        if not key:
            return self.root
        if self.memoize:
            cached = self._env_cache.get(key)
            if cached is not None:
                return cached
        env = self._env_for(key[:-1]).copy()
        try_apply_action(self.function, env, key[-1])
        propagate(self.function, env, incremental=self.incremental)
        if self.memoize:
            self._env_cache[key] = env
        return env

    def _env_for_undo(self, key: ActionKey) -> ShardingEnv:
        """Move the single mutable env to the state of canonical prefix
        ``key``: roll back to the longest common prefix with the current
        action stack, then extend one action at a time.

        Each extension replays the prefix's memoized propagation delta
        when available (O(writes), no rule evaluation) and otherwise runs
        the real apply + propagation fixed point, memoizing the resulting
        write delta.  With ``memoize=False`` the env retracts all the way
        to the root first and nothing is replayed — every evaluation pays
        its full prefix, mirroring the fork engine's uncached behavior.
        """
        env = self.root
        stack = self._stack
        lcp = 0
        if self.memoize:
            limit = min(len(stack), len(key))
            while lcp < limit and stack[lcp][0] == key[lcp]:
                lcp += 1
        self.prefix_actions_total += len(key)
        self.prefix_actions_reused += lcp
        if lcp < len(stack):
            env.rollback(stack[lcp][1])
            del stack[lcp:]
        for action in key[lcp:]:
            prefix = key[:len(stack) + 1]
            token = env.checkpoint()
            delta = self._prop_memo.get(prefix) if self.memoize else None
            if delta is not None:
                set_sharding = env.set_sharding
                for value, sharding in delta:
                    set_sharding(value, sharding)
                env.drain_dirty()
            else:
                try_apply_action(self.function, env, action)
                propagate(self.function, env, incremental=self.incremental)
                if self.memoize:
                    self._prop_memo[prefix] = tuple(env.writes_since(token))
            stack.append((action, token))
        return env

    def last_extension_writes(self) -> Optional[int]:
        """Env writes the most recently applied action (top of the undo
        stack) contributed, propagation included; None when nothing is
        applied or on the fork engine.  Zero means the last action was a
        no-op at its position — the branch-and-bound solver uses this to
        drop subtrees whose every set is cost-identical to a sibling's
        (actions apply in canonical sorted order, so an action that
        no-ops after a given prefix no-ops after every extension of it
        too)."""
        if self.rollout_env != "undo" or not self._stack:
            return None
        return len(self.root.writes_since(self._stack[-1][1]))

    def evaluate(self, actions: Sequence[Tuple[int, int, int, str]]) -> float:
        key = canonical_key(actions)
        if self.memoize:
            cached = self.table.lookup(key)
            if cached is not None:
                return cached
        cost = self.compute(key)
        if self.memoize:
            self.table.store(key, cost)
        return cost

    def compute(self, key: ActionKey) -> float:
        """Score ``key`` unconditionally (no transposition-table lookup)."""
        t0 = time.perf_counter()
        env = self._env_for(key)
        t1 = time.perf_counter()
        self.propagate_time_s += t1 - t0
        if self.streaming:
            changed = env.drain_journal() if self.rollout_env == "undo" \
                else None
            if self.rollout_env == "undo" and self.memoize:
                # The env's write journal bounds what moved since the last
                # evaluation of this same mutable env, so the estimator
                # refreshes only the adjacent ops' segments.
                estimate = self._estimator.estimate_incremental(env, changed)
            else:
                estimate = self._estimator.estimate(env)
        else:
            lowered = lower(self.function, env)
            lowered.function = fuse_collectives(lowered.function)
            estimate = costmodel.estimate(lowered, self.device)
            self.lower_calls += 1
        cost = costmodel.search_objective(estimate, self.device)
        self.last_estimate = estimate
        self.estimate_time_s += time.perf_counter() - t1
        self.evaluations += 1
        return cost
