"""Scoring canonical action sets: the prefix-env + streaming-estimator pipeline.

The evaluator is the purity boundary the whole search subsystem leans on:
``evaluate(actions)`` is a pure function of the canonical action set (given
the function, initial env, mesh and device), independent of the order the
tree discovered the set in and of which process runs the evaluation.  The
scheduler exploits that purity to run evaluations serially, in batched
waves, or fanned across worker processes — and the transposition table
(:mod:`repro.auto.cache`) to reuse scores across whole searches.

Speed layers, all exact:

* a **prefix env cache**: the propagated :class:`ShardingEnv` for each
  canonical prefix is memoized, so scoring a set extends its longest cached
  prefix with one incremental-propagation fixed point per new action rather
  than replaying the prefix from scratch, and
* a **streaming cost evaluator** (``streaming=True``):
  :class:`repro.sim.costmodel.StreamingEstimator` prices the lowering
  stream directly — per-op lowering plans and whole reconcile-chain costs
  are memoized on sharding signatures, so an evaluation re-plans only what
  changed since any previous evaluation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.propagate import propagate
from repro.core.sharding import ShardingEnv
from repro.ir.function import Function
from repro.sim import costmodel
from repro.sim.devices import DeviceSpec
from repro.spmd.fusion import fuse_collectives
from repro.spmd.lower import lower

from repro.auto.cache import TranspositionTable
from repro.auto.tree import ActionKey, canonical_key


def action_legal(env: ShardingEnv, param, dim: int, axis: str) -> bool:
    """May ``param``'s ``dim`` still be tiled along ``axis`` under ``env``?"""
    sharding = env.sharding(param)
    if sharding.uses(axis) or sharding.is_pinned(axis):
        return False
    denom = env.mesh.group_size(sharding.dim_axes[dim])
    return param.type.shape[dim] % (denom * env.mesh.size(axis)) == 0


def candidate_actions(function: Function, env: ShardingEnv,
                      axes: Sequence[str],
                      max_inputs: int = 48) -> List[Tuple[int, int, str]]:
    """Enumerate legal tile actions on the largest function inputs."""
    ranked = sorted(
        enumerate(function.params),
        key=lambda pair: -pair[1].type.nbytes,
    )[:max_inputs]
    actions = []
    for index, param in ranked:
        for axis in axes:
            for dim in range(len(param.type.shape)):
                if action_legal(env, param, dim, axis):
                    actions.append((index, dim, axis))
    return actions


def try_apply_action(function: Function, env: ShardingEnv,
                     action: Tuple[int, int, str]) -> bool:
    """Apply one tile action if it is still legal under ``env``."""
    index, dim, axis = action
    param = function.params[index]
    if not action_legal(env, param, dim, axis):
        return False
    env.set_sharding(param, env.sharding(param).with_tile(dim, axis))
    return True


class Evaluator:
    """Scores canonical action sets; owns the memoization layers.

    ``table`` is the transposition table consulted when ``memoize`` is on;
    passing a shared (possibly disk-backed) table lets the scheduler and
    repeated searches pool their scores.  The evaluator itself stays cheap
    to construct in a worker process: everything it needs travels as
    ``(function, mesh, portable env state, device, flags)``.
    """

    def __init__(self, function: Function, env: ShardingEnv,
                 device: DeviceSpec, incremental: bool = True,
                 memoize: bool = True, streaming: bool = True,
                 reconcile_cache: bool = True,
                 table: Optional[TranspositionTable] = None):
        self.function = function
        self.device = device
        self.incremental = incremental
        self.memoize = memoize
        self.streaming = streaming
        self.evaluations = 0
        self.lower_calls = 0
        self.propagate_time_s = 0.0
        self.estimate_time_s = 0.0
        #: Work done by remote workers on this evaluator's behalf (the
        #: process scheduler aggregates each wave's counter deltas here,
        #: so SearchResult reflects worker-side cache behavior too).
        self.remote_ops_processed = 0
        self.remote_propagate_calls = 0
        self.remote_ops_reused = 0
        self.remote_reconcile_hits = 0
        self.table = table if table is not None else TranspositionTable()
        self._env_cache: Dict[ActionKey, ShardingEnv] = {}
        # One streaming estimator for the whole search: its per-op plan and
        # reconcile-chain memos are what let an evaluation reuse the
        # lowering decisions of every previously-scored env that agrees on
        # an op's neighborhood.
        self._estimator = costmodel.StreamingEstimator(
            function, env.mesh, device, reconcile_cache=reconcile_cache
        ) if streaming else None
        # Root fixed point: search never mutates the caller's env.  The
        # event log is dropped — evaluation envs never read it, and every
        # cached prefix env would otherwise re-copy the whole history.
        self.root = env.copy(with_events=False)
        propagate(function, self.root, incremental=incremental)

    @property
    def cache_hits(self) -> int:
        return self.table.hits

    @property
    def estimate_ops_reused(self) -> int:
        local = self._estimator.ops_reused if self._estimator else 0
        return local + self.remote_ops_reused

    @property
    def reconcile_chain_hits(self) -> int:
        local = self._estimator.reconcile_hits if self._estimator else 0
        return local + self.remote_reconcile_hits

    def _env_for(self, key: ActionKey) -> ShardingEnv:
        """Propagated env for a canonical action prefix.

        Recursively extends the env of ``key[:-1]`` by one action + one
        propagation fixed point, reusing cached prefixes when memoizing.
        """
        if not key:
            return self.root
        if self.memoize:
            cached = self._env_cache.get(key)
            if cached is not None:
                return cached
        env = self._env_for(key[:-1]).copy()
        try_apply_action(self.function, env, key[-1])
        propagate(self.function, env, incremental=self.incremental)
        if self.memoize:
            self._env_cache[key] = env
        return env

    def evaluate(self, actions: Sequence[Tuple[int, int, str]]) -> float:
        key = canonical_key(actions)
        if self.memoize:
            cached = self.table.lookup(key)
            if cached is not None:
                return cached
        cost = self.compute(key)
        if self.memoize:
            self.table.store(key, cost)
        return cost

    def compute(self, key: ActionKey) -> float:
        """Score ``key`` unconditionally (no transposition-table lookup)."""
        t0 = time.perf_counter()
        env = self._env_for(key)
        t1 = time.perf_counter()
        self.propagate_time_s += t1 - t0
        if self.streaming:
            estimate = self._estimator.estimate(env)
        else:
            lowered = lower(self.function, env)
            lowered.function = fuse_collectives(lowered.function)
            estimate = costmodel.estimate(lowered, self.device)
            self.lower_calls += 1
        cost = costmodel.search_objective(estimate, self.device)
        self.estimate_time_s += time.perf_counter() - t1
        self.evaluations += 1
        return cost
