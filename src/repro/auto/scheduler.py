"""Rollout scheduling: serial, batched, and multiprocess search backends.

The tree policy proposes rollouts (canonical action sets); the evaluator
scores them; the scheduler decides *how many are in flight at once* and
*where they are scored*:

* ``serial`` — one rollout at a time, evaluate, back up: the classic
  single-loop MCTS.  Virtual loss is applied and reverted around a wave of
  size one, which provably changes no UCT score, so ``batched`` with
  ``wave_size=1`` is bit-identical to ``serial``, counters included (the
  regression suite pins this).  Note the rollout *randomness* is the
  per-node streams of :mod:`repro.auto.tree` for every backend — a
  deliberate change from the pre-package module's single shared
  ``random.Random``, so that no backend's interleaving can perturb
  another rollout's draw.
* ``batched`` — collects a wave of leaves under virtual loss, then scores
  the wave's distinct action sets in **Euler-tour order** (the leaves'
  ``tour_path`` positions, ties by key) through the shared evaluator:
  consecutive evaluations come from neighboring subtrees, so the undo
  engine's rollback/extend distance tracks the true edit distance between
  rollouts, before reverting the losses and backing up every leaf.
* ``remote`` — same wave formation and LCP-affinity routing as
  ``process``, but the workers are **evaluator sessions on a plan
  server** (:mod:`repro.auto.server`): one socket connection per worker,
  primed once with the same ``(function, mesh, portable env state,
  device, flags)`` payload, then streamed canonical action keys — one
  search fanning rollout waves across machines.  An unreachable server
  raises :class:`SchedulerUnavailable` at start, which ``mcts_search``
  catches to fall back to the serial backend.
* ``process`` — forms waves the same way, but fans the wave's
  transposition-table misses across ``multiprocessing`` workers.  PR 1's
  prefix-env cache made evaluations independent given their prefix: a
  worker owns a full :class:`~repro.auto.evaluator.Evaluator` (its own
  prefix envs, plan memos and local table), so the only bytes crossing the
  process boundary are canonical action keys out and ``(key, cost,
  counters)`` back.  Tour-ordered keys are routed by longest-common-prefix
  affinity: each goes to the worker whose last routed key shares the
  longest canonical prefix (ties to a stable hash of the leading action,
  with a per-wave cap keeping the fan-out balanced), so every worker's
  slice of the wave is a run of tree-neighboring sets its prefix-env and
  lowering-plan caches stay warm for (each worker is its own
  single-process pool precisely so the routing — not pool timing —
  decides placement).

Workers are primed once per search with ``(function, mesh, portable env
state, device, flags)``; under the default ``fork`` start method that
transfer is free, and everything in the payload is picklable for ``spawn``
platforms (see ``ShardingEnv.portable_state`` and
``StreamingEstimator.__getstate__``).

The process backend additionally wires every evaluator — the main
process's and each worker's — into one **cross-worker shared plan memo**
(:mod:`repro.auto.sharedmemo`): cold per-op lowering plans and
reconcile-chain costs are published to a shared-memory append log and
adopted by siblings on their next evaluation, so the pool as a whole
plans each distinct neighborhood once instead of once per process.
``SearchResult.shared_plan_hits`` aggregates the cold computations
avoided.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.sharding import ShardingEnv

from repro.auto import faults, sharedmemo
from repro.auto.evaluator import Evaluator
from repro.auto.tree import ActionKey, TreePolicy, _stable_hash


def key_lcp(a: ActionKey, b: ActionKey) -> int:
    """Longest common prefix (in actions) of two canonical action sets —
    the undo engine's measure of how much applied-prefix state survives
    between two consecutive evaluations."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i

#: Default worker count for the process backend.
DEFAULT_WORKERS = 2

BACKENDS = ("serial", "batched", "process", "remote")

#: Ceiling on one worker slice of one wave; a pool that produces nothing
#: for this long is treated as wedged and healed like a dead one.
DEFAULT_WAVE_TIMEOUT_S = 300.0
#: Pool re-forks (process) / session re-connects (remote) allowed per
#: search before the backend degrades to in-process serial evaluation.
DEFAULT_RESTART_BUDGET = 1
#: Per-call socket deadline for the remote backend.
DEFAULT_RPC_TIMEOUT_S = 60.0
#: Reconnect attempts per healed remote session (exponential backoff).
RECONNECT_ATTEMPTS = 3

ENV_WAVE_TIMEOUT = "PARTIR_WAVE_TIMEOUT_S"
ENV_RESTART_BUDGET = "PARTIR_RESTART_BUDGET"

#: How often a collecting wave polls its futures for completion or
#: worker death.  Collection still folds results in submission order, so
#: the poll cadence never affects results — only failure latency.
_POLL_S = 0.05


def _env_positive(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return default


class SchedulerUnavailable(RuntimeError):
    """A backend's resources could not be reached (e.g. the ``remote``
    backend's plan server is down); callers may fall back to a local
    backend."""


class RolloutScheduler:
    """Drives ``budget`` rollouts of ``policy`` through ``evaluator``.

    ``on_result(key, cost)`` fires once per rollout in wave order (the
    deterministic record the caller tracks the incumbent best with);
    rewards are backed up through the leaf that proposed the rollout.
    """

    name = "base"

    def __init__(self, wave_size: Optional[int] = None,
                 workers: Optional[int] = None,
                 restart_budget: Optional[int] = None,
                 wave_timeout_s: Optional[float] = None,
                 seed: int = 0):
        self.wave_size = wave_size
        self.workers = workers
        self.seed = seed
        self.restart_budget = int(
            restart_budget if restart_budget is not None
            else _env_positive(ENV_RESTART_BUDGET, DEFAULT_RESTART_BUDGET)
        )
        self.wave_timeout_s = (
            wave_timeout_s if wave_timeout_s is not None
            else _env_positive(ENV_WAVE_TIMEOUT, DEFAULT_WAVE_TIMEOUT_S)
        )
        self._started = False
        #: Per-wave longest-common-prefix statistics over the order the
        #: wave's distinct keys were actually evaluated in: number of
        #: waves, consecutive pairs, and summed LCP actions.  Surfaced via
        #: ``SearchResult`` (``waves`` / ``wave_lcp_mean``).
        self.waves = 0
        self.wave_lcp_pairs = 0
        self.wave_lcp_actions = 0
        #: Self-healing record, surfaced via ``SearchResult``: worker
        #: pools re-forked / remote sessions re-connected, wave slices
        #: re-routed after a failure, and — past the restart budget —
        #: which in-process backend the search degraded to ("" = never).
        self.workers_restarted = 0
        self.waves_retried = 0
        self.degraded_to = ""
        self._restarts_left = self.restart_budget

    def _degrade(self, reason: str) -> None:
        """Terminal rung of the degradation ladder: score every remaining
        rollout on the main process's evaluator.  Evaluation is a pure
        function of the canonical key, so the switch changes which CPU
        does the work — never the costs, and never the search trajectory
        (``run`` backs up in wave order regardless of who evaluated)."""
        if not self.degraded_to:
            self.degraded_to = "serial"
            warnings.warn(
                f"{self.name} rollout backend degraded to in-process "
                f"serial evaluation: {reason} (results are unaffected; "
                f"raise PARTIR_RESTART_BUDGET to keep healing instead)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _note_wave_order(self, ordered: Sequence[ActionKey]) -> None:
        self.waves += 1
        for prev, key in zip(ordered, ordered[1:]):
            self.wave_lcp_pairs += 1
            self.wave_lcp_actions += key_lcp(prev, key)

    # -- the wave loop ------------------------------------------------------

    def prepare(self, evaluator: Evaluator) -> None:
        """Start backend resources early (optional).

        The process scheduler forks its worker pools here: ``Pool()``
        returns as soon as the children exist, so their initializers —
        which prime each worker's caches with a full root evaluation —
        run concurrently with the main process's own baseline evaluation.
        """
        if not self._started:
            self._start(evaluator)
            self._started = True

    def shutdown(self) -> None:
        """Release backend resources (idempotent; ``run`` calls it too)."""
        if self._started:
            self._stop()
            self._started = False

    def run(self, policy: TreePolicy, evaluator: Evaluator, budget: int,
            baseline: float,
            on_result: Callable[[ActionKey, float], None]) -> None:
        wave_size = self._effective_wave_size(budget)
        self.prepare(evaluator)
        try:
            done = 0
            while done < budget:
                count = min(wave_size, budget - done)
                wave = []
                tours: Dict[ActionKey, tuple] = {}
                for _ in range(count):
                    node, key = policy.next_rollout()
                    node.apply_virtual_loss()
                    wave.append((node, key))
                    # Euler-tour position of the rollout's leaf; duplicate
                    # keys keep the earliest (deterministic: expansion
                    # order fixes tour paths per seed).
                    tour = node.tour_path
                    existing = tours.get(key)
                    if existing is None or tour < existing:
                        tours[key] = tour
                costs = self._evaluate_wave(
                    evaluator, [key for _, key in wave], tours
                )
                for node, key in wave:
                    node.revert_virtual_loss()
                    cost = costs[key]
                    on_result(key, cost)
                    # Reward = relative improvement over the empty set.
                    reward = (baseline - cost) / max(baseline, 1e-12)
                    # Fold the rollout into the per-action-group prior
                    # statistics before backing up, in wave order — the
                    # same deterministic order on_result fires in, so
                    # every backend's prior trajectory is reproducible
                    # (and batched wave_size=1 stays bit-identical to
                    # serial, priors included).
                    policy.note_result(key, reward)
                    node.backup(reward)
                done += count
        finally:
            self.shutdown()

    def _effective_wave_size(self, budget: int) -> int:
        return self.wave_size or 1

    def _start(self, evaluator: Evaluator) -> None:
        pass

    def _stop(self) -> None:
        pass

    def _evaluate_wave(self, evaluator: Evaluator, keys: Sequence[ActionKey],
                       tours: Dict[ActionKey, tuple]) -> Dict[
                           ActionKey, float]:
        raise NotImplementedError


class SerialScheduler(RolloutScheduler):
    """One rollout in flight: the classic MCTS loop, bit-identical."""

    name = "serial"

    def _effective_wave_size(self, budget: int) -> int:
        return 1

    def _evaluate_wave(self, evaluator, keys, tours):
        self._note_wave_order(list(keys))
        return {key: evaluator.evaluate(key) for key in keys}


class BatchedScheduler(RolloutScheduler):
    """A wave of leaves in flight, scored through shared prefix envs."""

    name = "batched"
    DEFAULT_WAVE = 8

    def _effective_wave_size(self, budget: int) -> int:
        return self.wave_size or min(self.DEFAULT_WAVE, max(budget, 1))

    def _evaluate_wave(self, evaluator, keys, tours):
        # Prefix-aware wave ordering: score the wave's distinct sets along
        # the tree's Euler tour (leaf ``tour_path``, ties by key), so
        # consecutive evaluations come from neighboring subtrees and the
        # undo engine's rollback/extend distance tracks the true edit
        # distance between rollouts instead of jumping across the tree.
        # Only the *evaluation* order changes — ``run`` backs results up
        # in wave order regardless, so a wave of one stays bit-identical
        # to the serial loop.
        ordered = sorted(set(keys), key=lambda key: (tours.get(key, ()), key))
        self._note_wave_order(ordered)
        return {key: evaluator.evaluate(key) for key in ordered}


# -- process backend ---------------------------------------------------------------

# Per-worker evaluator, primed once by _worker_init (fork or spawn safe).
_WORKER_EVALUATOR: Optional[Evaluator] = None


def _worker_init(function, mesh, portable_env, device, incremental,
                 memoize, streaming, reconcile_cache,
                 rollout_env="undo", shared_handle=None) -> None:
    global _WORKER_EVALUATOR
    # Re-arm the fault plan from PARTIR_FAULT_PLAN with *fresh* per-site
    # counters: a forked worker otherwise inherits the parent plan object
    # mid-count, making worker fault schedules depend on how much the
    # parent fired before the fork.  No plan installed -> clears to the
    # zero-overhead fast path.
    faults.reload_from_env()
    env = ShardingEnv(mesh)
    env.apply_portable_state(function, portable_env)
    _WORKER_EVALUATOR = Evaluator(
        function, env, device, incremental=incremental, memoize=memoize,
        streaming=streaming, reconcile_cache=reconcile_cache,
        rollout_env=rollout_env,
    )
    if shared_handle is not None and _WORKER_EVALUATOR._estimator is not None:
        store = sharedmemo.attach_store(shared_handle)
        _WORKER_EVALUATOR._estimator.attach_shared_store(store)
    # Prime the worker's per-op plan and reconcile-chain memos with the
    # root env's full evaluation.  Initializers run while the main process
    # computes its own baseline, so each worker's one unavoidable
    # cold-cache full plan hides behind work the search does anyway.
    _WORKER_EVALUATOR.evaluate(())


def _worker_evaluate(key: ActionKey):
    """Score one key in this process's primed evaluator (pool target)."""
    if faults.should_fire("worker.exit"):
        # Simulate an OOM-kill/segfault: die without cleanup, result
        # never delivered.  The parent's liveness poll sees the pid
        # change and re-routes this key.
        os._exit(17)
    return evaluate_with_deltas(_WORKER_EVALUATOR, key)


def evaluate_with_deltas(evaluator: Evaluator, key: ActionKey):
    """Score one key; return the cost plus this call's counter deltas so
    the main evaluator's observability (and the benchmark JSONs) reflect
    worker-side cache behavior, not just the main process's.  Shared by
    the process pool workers and the plan server's evaluator sessions —
    both speak the same 13-tuple."""
    stats = evaluator.root.stats
    before = (
        evaluator.propagate_time_s,
        evaluator.estimate_time_s,
        stats.ops_processed,
        stats.propagate_calls,
        evaluator.estimate_ops_reused,
        evaluator.reconcile_chain_hits,
        evaluator.lower_calls,
        evaluator.shared_plan_hits,
        evaluator.prefix_actions_total,
        evaluator.prefix_actions_reused,
    )
    cost = evaluator.evaluate(key)
    return (
        key,
        cost,
        evaluator.propagate_time_s - before[0],
        evaluator.estimate_time_s - before[1],
        stats.ops_processed - before[2],
        stats.propagate_calls - before[3],
        evaluator.estimate_ops_reused - before[4],
        evaluator.reconcile_chain_hits - before[5],
        evaluator.lower_calls - before[6],
        evaluator.shared_plan_hits - before[7],
        evaluator.shared_memo_full,
        evaluator.prefix_actions_total - before[8],
        evaluator.prefix_actions_reused - before[9],
    )


def _fold_delta(evaluator: Evaluator, result, store=None) -> None:
    """Fold one worker 13-tuple's counter deltas into the main evaluator
    (shared by the process and remote backends) and memoize its cost."""
    (key, cost, prop_dt, est_dt, ops, prop_calls, ops_reused,
     chain_hits, lower_calls, shared_hits, shared_full,
     prefix_total, prefix_reused) = result
    evaluator.evaluations += 1
    evaluator.propagate_time_s += prop_dt
    evaluator.estimate_time_s += est_dt
    evaluator.remote_ops_processed += ops
    evaluator.remote_propagate_calls += prop_calls
    evaluator.remote_ops_reused += ops_reused
    evaluator.remote_reconcile_hits += chain_hits
    evaluator.lower_calls += lower_calls
    evaluator.remote_shared_plan_hits += shared_hits
    evaluator.remote_shared_full |= shared_full
    if shared_full and store is not None:
        # Workers never warn themselves; surface the segment fill as the
        # main process's one-shot RuntimeWarning.
        store.note_remote_full()
    evaluator.remote_prefix_actions_total += prefix_total
    evaluator.remote_prefix_actions_reused += prefix_reused
    if evaluator.memoize:
        evaluator.table.store(tuple(map(tuple, key)), cost)


class _AffinityScheduler(RolloutScheduler):
    """Shared wave-routing machinery for backends with evaluator-owning
    workers (``process`` pools, ``remote`` server sessions): table-hit
    filtering, Euler-tour ordering, and LCP-affine placement over
    ``self._nslots`` worker slots."""

    def _effective_wave_size(self, budget: int) -> int:
        workers = self.workers or DEFAULT_WORKERS
        return self.wave_size or min(max(budget, 1), 2 * workers)

    def _split_wave(self, evaluator, keys, tours):
        """Serve table hits locally; return ``(costs, tour-ordered
        misses)`` for the backend to fan out."""
        costs: Dict[ActionKey, float] = {}
        misses: List[ActionKey] = []
        # Euler-tour order (see BatchedScheduler): each worker's slice of
        # the wave is then a run of tree-neighboring sets, which its undo
        # engine extends with short rollbacks.
        for key in sorted(set(keys),
                          key=lambda key: (tours.get(key, ()), key)):
            cached = evaluator.table.lookup(key) if evaluator.memoize \
                else None
            if cached is not None:
                costs[key] = cached
            else:
                misses.append(key)
        self._note_wave_order(misses)
        return costs, misses

    def _route(self, key: ActionKey) -> int:
        """Home worker index for a canonical action set (affinity-free
        fallback).

        Hashing the *leading* action sends every set extending a given
        prefix to the same worker, wave after wave — the worker's cached
        prefix envs and lowering plans then serve its whole slice of the
        action space."""
        return _stable_hash(key[:1]) % self._nslots

    def _route_wave(self, ordered: Sequence[ActionKey]) -> Dict[
            int, List[ActionKey]]:
        """Assign a tour-ordered wave of table misses to workers by
        longest-common-prefix affinity.

        Each key goes to the eligible worker whose *last routed key*
        shares the longest canonical prefix — i.e. the worker whose undo
        engine is already standing closest to the requested state.  Ties
        fall back to the stable leading-action home (keeping each prefix
        slice on one worker across waves), then to the lowest index.  A
        per-wave cap of ``ceil(misses / workers)`` keeps the fan-out
        balanced, so affinity can never starve the pool down to one busy
        worker.  Everything here is a function of the wave content and
        the routing history — never of pool timing — so placement stays
        deterministic for a fixed seed."""
        npools = self._nslots
        cap = -(-len(ordered) // npools) if ordered else 0
        assignments: Dict[int, List[ActionKey]] = {w: [] for w in
                                                   range(npools)}
        last = self._last_key
        for key in ordered:
            home = self._route(key)
            best = max(
                (w for w in range(npools) if len(assignments[w]) < cap),
                key=lambda w: (
                    key_lcp(key, last[w]) if last[w] is not None else 0,
                    w == home,
                    -w,
                ),
            )
            assignments[best].append(key)
            last[best] = key
        return {w: keys for w, keys in assignments.items() if keys}


class ProcessScheduler(_AffinityScheduler):
    """Waves fanned across evaluator-owning worker processes.

    Each worker is a single-process pool of its own, so the prefix-affine
    routing — not pool scheduling timing — decides which worker scores
    which action set.  That keeps placement (and therefore each worker's
    cache contents) deterministic for a fixed seed.

    Self-healing: wave collection polls each worker's pid alongside its
    result, so a worker that dies (or produces nothing within
    ``wave_timeout_s``) is detected mid-wave; its pool is terminated and
    re-forked (within ``restart_budget``), its unfinished keys re-routed
    across the survivors, and past the budget the scheduler degrades to
    in-process serial evaluation — a rollout is never lost, because every
    evaluation is a pure function of the canonical key and re-executes
    bit-identically anywhere.
    """

    name = "process"

    def _start(self, evaluator: Evaluator) -> None:
        workers = self.workers or DEFAULT_WORKERS
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        if evaluator.rollout_env == "undo":
            # The undo engine's single env must be at the root (empty
            # prefix) state before its shardings are snapshotted for the
            # workers' baselines.
            evaluator._env_for(())
        # Cross-worker shared plan memo: one shared-memory append log for
        # the whole search; the main evaluator joins too, so its baseline
        # evaluation seeds the store while the pools fork.
        self._store = None
        if evaluator._estimator is not None:
            self._store = sharedmemo.create_store(context)
            evaluator._estimator.attach_shared_store(self._store)
        root = evaluator.root
        initargs = (
            evaluator.function,
            root.mesh,
            root.portable_state(evaluator.function),
            evaluator.device,
            evaluator.incremental,
            evaluator.memoize,
            evaluator.streaming,
            evaluator._estimator._chains is not None
            if evaluator._estimator else True,
            evaluator.rollout_env,
            self._store.handle() if self._store is not None else None,
        )
        pools = []
        try:
            for _ in range(workers):
                pools.append(context.Pool(1, initializer=_worker_init,
                                          initargs=initargs))
        except BaseException:
            # A mid-list Pool() failure (fork limits, memory pressure)
            # must not leak the workers already forked.
            for pool in pools:
                pool.terminate()
                pool.join()
            raise
        self._context = context
        self._initargs = initargs
        self._pools = pools
        self._nslots = len(pools)
        #: The pids each pool was forked with.  ``multiprocessing.Pool``
        #: silently replaces a dead worker (losing its in-flight task),
        #: so liveness is "still the same pid", not "some process alive".
        self._pids = [tuple(p.pid for p in pool._pool) for pool in pools]
        #: Last key routed to each worker — the affinity anchor the
        #: LCP router extends wave after wave.
        self._last_key: List[Optional[ActionKey]] = [None] * len(pools)

    def _stop(self) -> None:
        for pool in self._pools:
            try:
                pool.close()
            except ValueError:  # already terminated by _heal
                pass
        for pool in self._pools:
            pool.join()
        self._pools = []
        if self._store is not None:
            self._store.close()
            self._store.unlink()
            self._store = None

    # -- self-healing -------------------------------------------------------

    def _worker_broken(self, worker: int) -> bool:
        pool = self._pools[worker]
        procs = getattr(pool, "_pool", None)
        if not procs:
            return True
        return any(
            proc.pid != pid or not proc.is_alive()
            for proc, pid in zip(procs, self._pids[worker])
        )

    def _collect(self, worker: int, future):
        """This worker's slice of the wave, or None when the worker died
        or went silent past ``wave_timeout_s`` (the caller re-routes).
        Evaluation errors still propagate — a raising rollout is a bug,
        not a fault to heal."""
        deadline = time.monotonic() + self.wave_timeout_s
        while True:
            try:
                return future.get(timeout=_POLL_S)
            except multiprocessing.TimeoutError:
                if self._worker_broken(worker):
                    return None
                if time.monotonic() > deadline:
                    return None

    def _heal(self, broken: Sequence[int]) -> None:
        """Re-fork each broken worker's pool within the restart budget;
        past it, degrade to in-process serial for the rest of the search."""
        for worker in broken:
            pool = self._pools[worker]
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
            if self._restarts_left > 0:
                self._restarts_left -= 1
                try:
                    fresh = self._context.Pool(
                        1, initializer=_worker_init,
                        initargs=self._initargs,
                    )
                except Exception:
                    self._degrade(f"worker {worker} could not be re-forked")
                    return
                self._pools[worker] = fresh
                self._pids[worker] = tuple(p.pid for p in fresh._pool)
                self.workers_restarted += 1
            else:
                self._degrade(
                    f"worker {worker} failed with no restart budget left "
                    f"({self.restart_budget} used)"
                )
                return

    def _evaluate_wave(self, evaluator, keys, tours):
        costs, misses = self._split_wave(evaluator, keys, tours)
        pending = list(misses)
        while pending:
            if self.degraded_to:
                for key in pending:
                    costs[key] = evaluator.evaluate(key)
                break
            routed = sorted(self._route_wave(pending).items())
            futures = [
                (worker, worker_keys,
                 self._pools[worker].map_async(_worker_evaluate,
                                               worker_keys,
                                               chunksize=len(worker_keys)))
                for worker, worker_keys in routed
            ]
            # Collect in submission (sorted-worker) order: the fold order
            # of counter deltas — and therefore every downstream counter —
            # stays deterministic whether or not anything failed.
            failed: List[ActionKey] = []
            broken: List[int] = []
            for worker, worker_keys, future in futures:
                results = self._collect(worker, future)
                if results is None:
                    failed.extend(worker_keys)
                    broken.append(worker)
                    continue
                for result in results:
                    costs[result[0]] = result[1]
                    _fold_delta(evaluator, result, store=self._store)
            if not failed:
                break
            self.waves_retried += 1
            self._heal(broken)
            pending = failed
        return costs


class RemoteScheduler(_AffinityScheduler):
    """Waves fanned across evaluator sessions on a plan server.

    Mirrors :class:`ProcessScheduler` — one primed evaluator per worker,
    LCP-affine placement, 13-tuple counter deltas back — except the
    workers live behind ``plan_server`` socket connections, so the same
    search can span machines.  No shared plan memo crosses the wire (the
    server's sessions share a process, which is better than a memo).

    Self-healing: every call carries a ``rpc_timeout_s`` socket deadline;
    a failed worker slice (reset, timeout, server-side error) is retried
    through a fresh connection — bounded exponential backoff whose jitter
    is a deterministic hash of the search seed, then a replayed
    ``eval_init`` so the new session is primed identically — and past the
    restart budget the scheduler degrades to in-process serial
    evaluation, same terminus as the process backend.
    """

    name = "remote"

    def __init__(self, wave_size: Optional[int] = None,
                 workers: Optional[int] = None,
                 plan_server=None,
                 restart_budget: Optional[int] = None,
                 wave_timeout_s: Optional[float] = None,
                 rpc_timeout_s: Optional[float] = None,
                 seed: int = 0):
        super().__init__(wave_size=wave_size, workers=workers,
                         restart_budget=restart_budget,
                         wave_timeout_s=wave_timeout_s, seed=seed)
        if plan_server is None:
            raise ValueError(
                "backend='remote' requires plan_server='host:port'"
            )
        self.plan_server = plan_server
        self.rpc_timeout_s = (rpc_timeout_s if rpc_timeout_s is not None
                              else DEFAULT_RPC_TIMEOUT_S)

    def _start(self, evaluator: Evaluator) -> None:
        from repro.auto import rpc

        workers = self.workers or DEFAULT_WORKERS
        if evaluator.rollout_env == "undo":
            # Same discipline as the process backend: snapshot the root
            # (empty prefix) state for the sessions' baselines.
            evaluator._env_for(())
        root = evaluator.root
        init = {
            "kind": "eval_init",
            "function": evaluator.function,
            "mesh": root.mesh,
            "env": root.portable_state(evaluator.function),
            "device": evaluator.device,
            "incremental": evaluator.incremental,
            "memoize": evaluator.memoize,
            "streaming": evaluator.streaming,
            "reconcile_cache": evaluator._estimator._chains is not None
            if evaluator._estimator else True,
            "rollout_env": evaluator.rollout_env,
        }
        self._init = init  # replayed verbatim by _reconnect
        connections = []
        try:
            for _ in range(workers):
                connection = rpc.connect(self.plan_server,
                                         timeout=self.rpc_timeout_s)
                connection.request(init)
                connections.append(connection)
        except (OSError, rpc.RemoteError) as exc:
            for connection in connections:
                connection.close()
            raise SchedulerUnavailable(
                f"plan server {self.plan_server!r} unavailable: {exc}"
            ) from exc
        self._connections = connections
        self._nslots = len(connections)
        self._last_key: List[Optional[ActionKey]] = [None] * len(
            connections)
        self._executor = ThreadPoolExecutor(
            max_workers=len(connections),
            thread_name_prefix="partir-remote",
        )

    def _stop(self) -> None:
        for connection in self._connections:
            try:
                connection.request({"kind": "eval_close"})
            except Exception:
                pass
            connection.close()
        self._connections = []
        self._executor.shutdown(wait=True)

    # -- self-healing -------------------------------------------------------

    def _reconnect(self, worker: int) -> bool:
        """Re-open ``worker``'s session: bounded exponential backoff with
        deterministic jitter (a stable hash of the search seed and the
        retry coordinates — every run of a seed backs off identically),
        then a replay of the saved ``eval_init`` so the fresh session is
        primed exactly like the one it replaces."""
        from repro.auto import rpc

        for attempt in range(RECONNECT_ATTEMPTS):
            delay = min(0.05 * (2 ** attempt), 1.0)
            jitter = _stable_hash(
                (self.seed, worker, attempt, self.workers_restarted)
            ) % 1000 / 2000.0  # +0..50%
            time.sleep(delay * (1.0 + jitter))
            try:
                connection = rpc.connect(self.plan_server,
                                         timeout=self.rpc_timeout_s)
                connection.request(self._init)
            except (rpc.RemoteError, ConnectionError, OSError):
                continue
            self._connections[worker] = connection
            return True
        return False

    def _heal_remote(self, broken: Sequence[int]) -> None:
        for worker in broken:
            try:
                self._connections[worker].close()
            except Exception:
                pass
            if self._restarts_left > 0:
                self._restarts_left -= 1
                if self._reconnect(worker):
                    self.workers_restarted += 1
                    continue
                self._degrade(
                    f"session {worker} could not reconnect to "
                    f"{self.plan_server!r} after {RECONNECT_ATTEMPTS} "
                    f"attempts"
                )
                return
            self._degrade(
                f"session {worker} failed with no restart budget left "
                f"({self.restart_budget} used)"
            )
            return

    def _evaluate_wave(self, evaluator, keys, tours):
        from repro.auto import rpc

        costs, misses = self._split_wave(evaluator, keys, tours)
        pending = list(misses)
        while pending:
            if self.degraded_to:
                for key in pending:
                    costs[key] = evaluator.evaluate(key)
                break
            routed = sorted(self._route_wave(pending).items())
            futures = [
                (worker, worker_keys, self._executor.submit(
                    self._connections[worker].request,
                    {"kind": "eval",
                     "keys": [list(k) for k in worker_keys]},
                ))
                for worker, worker_keys in routed
            ]
            failed: List[ActionKey] = []
            broken: List[int] = []
            for worker, worker_keys, future in futures:
                try:
                    results = future.result()
                except (rpc.RemoteError, ConnectionError, OSError):
                    # RemoteError included: a server-side eval failure
                    # (e.g. its request deadline fired) retires this
                    # session's state, so reconnect-and-re-init is the
                    # correct recovery either way.
                    failed.extend(worker_keys)
                    broken.append(worker)
                    continue
                for result in results:
                    key = tuple(map(tuple, result[0]))
                    costs[key] = result[1]
                    _fold_delta(evaluator, result)
            if not failed:
                break
            self.waves_retried += 1
            self._heal_remote(broken)
            pending = failed
        return costs


_SCHEDULERS = {
    "serial": SerialScheduler,
    "batched": BatchedScheduler,
    "process": ProcessScheduler,
    "remote": RemoteScheduler,
}


def make_scheduler(backend: str, wave_size: Optional[int] = None,
                   workers: Optional[int] = None,
                   plan_server=None,
                   restart_budget: Optional[int] = None,
                   wave_timeout_s: Optional[float] = None,
                   rpc_timeout_s: Optional[float] = None,
                   seed: int = 0) -> RolloutScheduler:
    try:
        cls = _SCHEDULERS[backend]
    except KeyError:
        raise ValueError(
            f"unknown search backend {backend!r}; expected one of {BACKENDS}"
        )
    if cls is RemoteScheduler:
        return cls(wave_size=wave_size, workers=workers,
                   plan_server=plan_server,
                   restart_budget=restart_budget,
                   wave_timeout_s=wave_timeout_s,
                   rpc_timeout_s=rpc_timeout_s, seed=seed)
    return cls(wave_size=wave_size, workers=workers,
               restart_budget=restart_budget,
               wave_timeout_s=wave_timeout_s, seed=seed)
