"""Rollout scheduling: serial, batched, and multiprocess search backends.

The tree policy proposes rollouts (canonical action sets); the evaluator
scores them; the scheduler decides *how many are in flight at once* and
*where they are scored*:

* ``serial`` — one rollout at a time, evaluate, back up: the classic
  single-loop MCTS.  Virtual loss is applied and reverted around a wave of
  size one, which provably changes no UCT score, so ``batched`` with
  ``wave_size=1`` is bit-identical to ``serial``, counters included (the
  regression suite pins this).  Note the rollout *randomness* is the
  per-node streams of :mod:`repro.auto.tree` for every backend — a
  deliberate change from the pre-package module's single shared
  ``random.Random``, so that no backend's interleaving can perturb
  another rollout's draw.
* ``batched`` — collects a wave of leaves under virtual loss, then scores
  the wave's distinct action sets in sorted order through the shared
  evaluator, so consecutive sets extend common cached prefix envs, before
  reverting the losses and backing up every leaf.
* ``process`` — forms waves the same way, but fans the wave's
  transposition-table misses across ``multiprocessing`` workers.  PR 1's
  prefix-env cache made evaluations independent given their prefix: a
  worker owns a full :class:`~repro.auto.evaluator.Evaluator` (its own
  prefix envs, plan memos and local table), so the only bytes crossing the
  process boundary are canonical action keys out and ``(key, cost,
  counters)`` back.  Keys are routed to workers by a stable hash of the
  canonical set's leading action: action sets sharing a prefix land on the
  same worker in every wave, so each worker's prefix-env and lowering-plan
  caches stay warm for its slice of the action space instead of every
  worker cold-replanning everything (each worker is its own single-process
  pool precisely so the routing — not pool timing — decides placement).

Workers are primed once per search with ``(function, mesh, portable env
state, device, flags)``; under the default ``fork`` start method that
transfer is free, and everything in the payload is picklable for ``spawn``
platforms (see ``ShardingEnv.portable_state`` and
``StreamingEstimator.__getstate__``).

The process backend additionally wires every evaluator — the main
process's and each worker's — into one **cross-worker shared plan memo**
(:mod:`repro.auto.sharedmemo`): cold per-op lowering plans and
reconcile-chain costs are published to a shared-memory append log and
adopted by siblings on their next evaluation, so the pool as a whole
plans each distinct neighborhood once instead of once per process.
``SearchResult.shared_plan_hits`` aggregates the cold computations
avoided.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.sharding import ShardingEnv

from repro.auto import sharedmemo
from repro.auto.evaluator import Evaluator
from repro.auto.tree import ActionKey, TreePolicy, _stable_hash

#: Default worker count for the process backend.
DEFAULT_WORKERS = 2

BACKENDS = ("serial", "batched", "process")


class RolloutScheduler:
    """Drives ``budget`` rollouts of ``policy`` through ``evaluator``.

    ``on_result(key, cost)`` fires once per rollout in wave order (the
    deterministic record the caller tracks the incumbent best with);
    rewards are backed up through the leaf that proposed the rollout.
    """

    name = "base"

    def __init__(self, wave_size: Optional[int] = None,
                 workers: Optional[int] = None):
        self.wave_size = wave_size
        self.workers = workers
        self._started = False

    # -- the wave loop ------------------------------------------------------

    def prepare(self, evaluator: Evaluator) -> None:
        """Start backend resources early (optional).

        The process scheduler forks its worker pools here: ``Pool()``
        returns as soon as the children exist, so their initializers —
        which prime each worker's caches with a full root evaluation —
        run concurrently with the main process's own baseline evaluation.
        """
        if not self._started:
            self._start(evaluator)
            self._started = True

    def shutdown(self) -> None:
        """Release backend resources (idempotent; ``run`` calls it too)."""
        if self._started:
            self._stop()
            self._started = False

    def run(self, policy: TreePolicy, evaluator: Evaluator, budget: int,
            baseline: float,
            on_result: Callable[[ActionKey, float], None]) -> None:
        wave_size = self._effective_wave_size(budget)
        self.prepare(evaluator)
        try:
            done = 0
            while done < budget:
                count = min(wave_size, budget - done)
                wave = []
                for _ in range(count):
                    node, key = policy.next_rollout()
                    node.apply_virtual_loss()
                    wave.append((node, key))
                costs = self._evaluate_wave(
                    evaluator, [key for _, key in wave]
                )
                for node, key in wave:
                    node.revert_virtual_loss()
                    cost = costs[key]
                    on_result(key, cost)
                    # Reward = relative improvement over the empty set.
                    reward = (baseline - cost) / max(baseline, 1e-12)
                    # Fold the rollout into the per-action-group prior
                    # statistics before backing up, in wave order — the
                    # same deterministic order on_result fires in, so
                    # every backend's prior trajectory is reproducible
                    # (and batched wave_size=1 stays bit-identical to
                    # serial, priors included).
                    policy.note_result(key, reward)
                    node.backup(reward)
                done += count
        finally:
            self.shutdown()

    def _effective_wave_size(self, budget: int) -> int:
        return self.wave_size or 1

    def _start(self, evaluator: Evaluator) -> None:
        pass

    def _stop(self) -> None:
        pass

    def _evaluate_wave(self, evaluator: Evaluator,
                       keys: Sequence[ActionKey]) -> Dict[ActionKey, float]:
        raise NotImplementedError


class SerialScheduler(RolloutScheduler):
    """One rollout in flight: the classic MCTS loop, bit-identical."""

    name = "serial"

    def _effective_wave_size(self, budget: int) -> int:
        return 1

    def _evaluate_wave(self, evaluator, keys):
        return {key: evaluator.evaluate(key) for key in keys}


class BatchedScheduler(RolloutScheduler):
    """A wave of leaves in flight, scored through shared prefix envs."""

    name = "batched"
    DEFAULT_WAVE = 8

    def _effective_wave_size(self, budget: int) -> int:
        return self.wave_size or min(self.DEFAULT_WAVE, max(budget, 1))

    def _evaluate_wave(self, evaluator, keys):
        # Sorted order maximizes shared canonical prefixes between
        # consecutive evaluations (the prefix-env cache turns those into
        # single-action incremental extensions).
        return {key: evaluator.evaluate(key) for key in sorted(set(keys))}


# -- process backend ---------------------------------------------------------------

# Per-worker evaluator, primed once by _worker_init (fork or spawn safe).
_WORKER_EVALUATOR: Optional[Evaluator] = None


def _worker_init(function, mesh, portable_env, device, incremental,
                 memoize, streaming, reconcile_cache,
                 rollout_env="undo", shared_handle=None) -> None:
    global _WORKER_EVALUATOR
    env = ShardingEnv(mesh)
    env.apply_portable_state(function, portable_env)
    _WORKER_EVALUATOR = Evaluator(
        function, env, device, incremental=incremental, memoize=memoize,
        streaming=streaming, reconcile_cache=reconcile_cache,
        rollout_env=rollout_env,
    )
    if shared_handle is not None and _WORKER_EVALUATOR._estimator is not None:
        store = sharedmemo.attach_store(shared_handle)
        _WORKER_EVALUATOR._estimator.attach_shared_store(store)
    # Prime the worker's per-op plan and reconcile-chain memos with the
    # root env's full evaluation.  Initializers run while the main process
    # computes its own baseline, so each worker's one unavoidable
    # cold-cache full plan hides behind work the search does anyway.
    _WORKER_EVALUATOR.evaluate(())


def _worker_evaluate(key: ActionKey):
    """Score one key; return the cost plus this call's counter deltas so
    the main evaluator's observability (and the benchmark JSONs) reflect
    worker-side cache behavior, not just the main process's."""
    evaluator = _WORKER_EVALUATOR
    stats = evaluator.root.stats
    before = (
        evaluator.propagate_time_s,
        evaluator.estimate_time_s,
        stats.ops_processed,
        stats.propagate_calls,
        evaluator.estimate_ops_reused,
        evaluator.reconcile_chain_hits,
        evaluator.lower_calls,
        evaluator.shared_plan_hits,
    )
    cost = evaluator.evaluate(key)
    return (
        key,
        cost,
        evaluator.propagate_time_s - before[0],
        evaluator.estimate_time_s - before[1],
        stats.ops_processed - before[2],
        stats.propagate_calls - before[3],
        evaluator.estimate_ops_reused - before[4],
        evaluator.reconcile_chain_hits - before[5],
        evaluator.lower_calls - before[6],
        evaluator.shared_plan_hits - before[7],
        evaluator.shared_memo_full,
    )


class ProcessScheduler(RolloutScheduler):
    """Waves fanned across evaluator-owning worker processes.

    Each worker is a single-process pool of its own, so the prefix-affine
    routing below — not pool scheduling timing — decides which worker
    scores which action set.  That keeps placement (and therefore each
    worker's cache contents) deterministic for a fixed seed.
    """

    name = "process"

    def _effective_wave_size(self, budget: int) -> int:
        workers = self.workers or DEFAULT_WORKERS
        return self.wave_size or min(max(budget, 1), 2 * workers)

    def _start(self, evaluator: Evaluator) -> None:
        workers = self.workers or DEFAULT_WORKERS
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        if evaluator.rollout_env == "undo":
            # The undo engine's single env must be at the root (empty
            # prefix) state before its shardings are snapshotted for the
            # workers' baselines.
            evaluator._env_for(())
        # Cross-worker shared plan memo: one shared-memory append log for
        # the whole search; the main evaluator joins too, so its baseline
        # evaluation seeds the store while the pools fork.
        self._store = None
        if evaluator._estimator is not None:
            self._store = sharedmemo.create_store(context)
            evaluator._estimator.attach_shared_store(self._store)
        root = evaluator.root
        initargs = (
            evaluator.function,
            root.mesh,
            root.portable_state(evaluator.function),
            evaluator.device,
            evaluator.incremental,
            evaluator.memoize,
            evaluator.streaming,
            evaluator._estimator._chains is not None
            if evaluator._estimator else True,
            evaluator.rollout_env,
            self._store.handle() if self._store is not None else None,
        )
        pools = []
        try:
            for _ in range(workers):
                pools.append(context.Pool(1, initializer=_worker_init,
                                          initargs=initargs))
        except BaseException:
            # A mid-list Pool() failure (fork limits, memory pressure)
            # must not leak the workers already forked.
            for pool in pools:
                pool.terminate()
                pool.join()
            raise
        self._pools = pools

    def _stop(self) -> None:
        for pool in self._pools:
            pool.close()
        for pool in self._pools:
            pool.join()
        self._pools = []
        if self._store is not None:
            self._store.close()
            self._store.unlink()
            self._store = None

    def _route(self, key: ActionKey) -> int:
        """Stable worker index for a canonical action set.

        Hashing the *leading* action sends every set extending a given
        prefix to the same worker, wave after wave — the worker's cached
        prefix envs and lowering plans then serve its whole slice of the
        action space."""
        return _stable_hash(key[:1]) % len(self._pools)

    def _evaluate_wave(self, evaluator, keys):
        costs: Dict[ActionKey, float] = {}
        assignments: Dict[int, List[ActionKey]] = {}
        for key in sorted(set(keys)):
            cached = evaluator.table.lookup(key) if evaluator.memoize \
                else None
            if cached is not None:
                costs[key] = cached
            else:
                assignments.setdefault(self._route(key), []).append(key)
        futures = [
            self._pools[worker].map_async(_worker_evaluate, worker_keys,
                                          chunksize=len(worker_keys))
            for worker, worker_keys in sorted(assignments.items())
        ]
        for future in futures:
            for (key, cost, prop_dt, est_dt, ops, prop_calls, ops_reused,
                 chain_hits, lower_calls, shared_hits,
                 shared_full) in future.get():
                costs[key] = cost
                evaluator.evaluations += 1
                evaluator.propagate_time_s += prop_dt
                evaluator.estimate_time_s += est_dt
                evaluator.remote_ops_processed += ops
                evaluator.remote_propagate_calls += prop_calls
                evaluator.remote_ops_reused += ops_reused
                evaluator.remote_reconcile_hits += chain_hits
                evaluator.lower_calls += lower_calls
                evaluator.remote_shared_plan_hits += shared_hits
                evaluator.remote_shared_full |= shared_full
                if evaluator.memoize:
                    evaluator.table.store(key, cost)
        return costs


_SCHEDULERS = {
    "serial": SerialScheduler,
    "batched": BatchedScheduler,
    "process": ProcessScheduler,
}


def make_scheduler(backend: str, wave_size: Optional[int] = None,
                   workers: Optional[int] = None) -> RolloutScheduler:
    try:
        cls = _SCHEDULERS[backend]
    except KeyError:
        raise ValueError(
            f"unknown search backend {backend!r}; expected one of {BACKENDS}"
        )
    return cls(wave_size=wave_size, workers=workers)
