"""Partitioning-as-a-service: the multi-tenant plan server daemon.

One long-lived :class:`PlanServer` serves partition plans, priors and
transposition entries to many concurrent clients over the framed socket
protocol of :mod:`repro.auto.rpc`:

* **plan requests** — the client ships its traced function, mesh,
  portable initial-sharding state, device and the semantic search
  parameters; the server answers from its two-tier
  :class:`~repro.auto.planstore.PlanStore` (exact fingerprint first, then
  the relaxed canonical fingerprint of :mod:`repro.auto.fingerprint`, so
  alpha-renamed or input-permuted isomorphic programs hit one shared
  entry) and only *searches* on a genuine miss.  Plans are cached in
  canonical index space and translated into each requester's local
  parameter/tag numbering on the way out.
* **in-flight deduplication** — a second request for a key whose search
  is still running blocks on the first request's completion instead of
  re-searching: N concurrent identical requests cost exactly one search
  (``stats()["searches_run"]`` is the regression-tested counter).
* **evaluator sessions** — the ``remote`` rollout backend
  (:class:`repro.auto.scheduler.RemoteScheduler`) opens one connection
  per remote worker, primes a server-side
  :class:`~repro.auto.evaluator.Evaluator` once (``eval_init``), then
  streams canonical action sets to score — fanning one search's rollout
  waves across machines with the same portable-state transport the
  ``process`` backend uses across forks.

Run the daemon with::

    python -m repro.auto.server --port 7077

and point clients at it with ``partir_jit(..., plan_server="host:port")``.
"""

from __future__ import annotations

import argparse
import dataclasses
import threading
from typing import Dict, Optional, Tuple

from repro.core.sharding import ShardingEnv

from repro.auto import faults, rpc
from repro.auto.cache import TranspositionTable, function_fingerprint, \
    table_for
from repro.auto.evaluator import Evaluator
from repro.auto.fingerprint import CanonicalForm, canonicalize
from repro.auto.planstore import PlanRecord, PlanStore
from repro.auto.search import mcts_search

#: Search parameters that define a plan's identity: requests agreeing on
#: all of these (and on the relaxed fingerprint) are "the same search" and
#: may share a cache entry / an in-flight future.  Everything else —
#: backend, rollout env, cache and streaming toggles — is bit-identical by
#: the regression-pinned purity properties and deliberately excluded.
SEMANTIC_PARAMS = ("budget", "rollout_depth", "exploration", "seed",
                   "max_inputs", "action_space", "max_tag_points",
                   "prune", "prior")


def params_key(axes, search_params: dict) -> Tuple:
    key = [tuple(axes)]
    for name in SEMANTIC_PARAMS:
        key.append(search_params.get(name))
    return tuple(key)


class _Inflight:
    """The future a deduplicated plan search resolves."""

    __slots__ = ("event", "record", "error")

    def __init__(self):
        self.event = threading.Event()
        self.record: Optional[PlanRecord] = None
        self.error: Optional[str] = None


class _ConnectionHandler:
    """Per-connection dispatch; owns the connection's evaluator session."""

    def __init__(self, server: "PlanServer"):
        self._server = server
        self._evaluator: Optional[Evaluator] = None

    def __call__(self, message):
        if not isinstance(message, dict):
            raise TypeError("malformed request")
        if message.get("protocol") != rpc.PROTOCOL:
            raise ValueError(
                f"protocol mismatch: server speaks {rpc.PROTOCOL}"
            )
        kind = message.get("kind")
        if kind == "ping":
            return "pong"
        if kind == "stats":
            return self._server.stats()
        if kind == "plan":
            return self._server.handle_plan(message)
        if kind == "table":
            return self._server.handle_table(message)
        if kind == "eval_init":
            return self._eval_init(message)
        if kind == "eval":
            return self._eval(message)
        if kind == "eval_close":
            self.close()
            return True
        raise ValueError(f"unknown request kind {kind!r}")

    # -- evaluator sessions (the `remote` rollout backend's far side) -------

    def _eval_init(self, message) -> float:
        function = message["function"]
        env = ShardingEnv(message["mesh"])
        env.apply_portable_state(function, message["env"])
        self._evaluator = Evaluator(
            function, env, message["device"],
            incremental=message.get("incremental", True),
            memoize=message.get("memoize", True),
            streaming=message.get("streaming", True),
            reconcile_cache=message.get("reconcile_cache", True),
            rollout_env=message.get("rollout_env", "undo"),
        )
        self._server.note_eval_session()
        # Prime the plan/chain memos exactly like a process-pool worker.
        return self._evaluator.evaluate(())

    def _eval(self, message):
        if self._evaluator is None:
            raise RuntimeError("eval before eval_init on this connection")
        from repro.auto.scheduler import evaluate_with_deltas

        return [evaluate_with_deltas(self._evaluator, tuple(map(tuple, key)))
                for key in message["keys"]]

    def close(self) -> None:
        self._evaluator = None


class PlanServer:
    """The daemon: a :class:`PlanStore` behind an :class:`rpc.RpcServer`.

    ``cache_dir`` (optional) gives server-side searches a persistent
    transposition/prior spool: repeated misses on one fingerprint
    warm-start each other, and completed plans carry their search's
    per-action-group priors in the store record.  ``search_fn`` is an
    injection point for tests (defaults to :func:`mcts_search`);
    ``search_defaults`` overrides the search's keyword defaults (e.g.
    ``{"backend": "process", "workers": 4}``).

    Hardening (passed through to the underlying
    :class:`~repro.auto.rpc.RpcServer`): ``max_connections`` bounds
    concurrent clients, ``idle_timeout_s`` reaps connections with no
    request for that long (evaluator sessions included — the remote
    backend reconnects and re-primes transparently), and
    ``request_deadline_s`` turns a wedged request into a clean error
    reply instead of a hung client.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[PlanStore] = None,
                 cache_dir: Optional[str] = None,
                 search_fn=None,
                 search_defaults: Optional[dict] = None,
                 search_timeout: float = 600.0,
                 max_connections: int = 64,
                 idle_timeout_s: Optional[float] = 300.0,
                 request_deadline_s: Optional[float] = None):
        self.store = store if store is not None else PlanStore()
        self.cache_dir = cache_dir
        self.search_timeout = search_timeout
        self._search_fn = search_fn if search_fn is not None else mcts_search
        self._search_defaults = dict(search_defaults or {})
        self._inflight: Dict[Tuple, _Inflight] = {}
        self._lock = threading.Lock()
        self.searches_run = 0
        self.dedup_joined = 0
        self.plan_requests = 0
        self.eval_sessions = 0
        self._rpc = rpc.RpcServer(lambda: _ConnectionHandler(self),
                                  host=host, port=port,
                                  max_connections=max_connections,
                                  idle_timeout_s=idle_timeout_s,
                                  request_deadline_s=request_deadline_s)

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self._rpc.address

    def start(self) -> "PlanServer":
        self._rpc.start()
        return self

    def serve_forever(self) -> None:
        self._rpc.serve_forever()

    def stop(self) -> None:
        self._rpc.stop()

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def note_eval_session(self) -> None:
        with self._lock:
            self.eval_sessions += 1

    def stats(self) -> dict:
        with self._lock:
            out = {
                "searches_run": self.searches_run,
                "dedup_joined": self.dedup_joined,
                "plan_requests": self.plan_requests,
                "eval_sessions": self.eval_sessions,
                "inflight": len(self._inflight),
            }
        out["store"] = self.store.stats()
        out["connections_rejected"] = self._rpc.connections_rejected
        out["connections_reaped"] = self._rpc.connections_reaped
        out["deadlines_exceeded"] = self._rpc.deadlines_exceeded
        return out

    # -- plan serving -------------------------------------------------------

    def _request_context(self, message):
        function = message["function"]
        mesh = message["mesh"]
        device = message["device"]
        env = ShardingEnv(mesh)
        env.apply_portable_state(function, message["env"])
        canon = canonicalize(function, mesh, device, env)
        exact_fp = function_fingerprint(function, mesh, device, env)
        return function, mesh, device, env, canon, exact_fp

    def handle_plan(self, message) -> dict:
        (function, mesh, device, env, canon,
         exact_fp) = self._request_context(message)
        axes = list(message["axes"])
        search_params = dict(message.get("search", {}))
        pkey = params_key(axes, search_params)
        with self._lock:
            self.plan_requests += 1
        found = self.store.lookup(exact_fp, canon.digest, pkey)
        if found is not None:
            record, tier = found
            return self._reply(record, tier, canon)
        key = (canon.digest, pkey)
        with self._lock:
            flight = self._inflight.get(key)
            runner = flight is None
            if runner:
                flight = _Inflight()
                self._inflight[key] = flight
                self.searches_run += 1
            else:
                self.dedup_joined += 1
        if not runner:
            if not flight.event.wait(timeout=self.search_timeout):
                raise TimeoutError(
                    "deduplicated search did not finish in time"
                )
            if flight.record is None:
                raise RuntimeError(
                    f"deduplicated search failed: {flight.error}"
                )
            return self._reply(flight.record, "dedup", canon)
        try:
            record = self._run_search(function, env, axes, device,
                                      search_params, canon, exact_fp, key)
            flight.record = record
        except BaseException as exc:
            flight.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
        return self._reply(record, "search", canon)

    def _run_search(self, function, env, axes, device, search_params,
                    canon: CanonicalForm, exact_fp: str,
                    key: Tuple) -> PlanRecord:
        kwargs = dict(self._search_defaults)
        for name in SEMANTIC_PARAMS:
            if search_params.get(name) is not None:
                kwargs[name] = search_params[name]
        kwargs.setdefault("cache_dir", self.cache_dir)
        if faults.should_fire("server.search"):
            # Simulates the daemon's search crashing/timing out: the
            # client sees a RemoteError reply and falls back to a local
            # search (the degradation ladder's serving rung).
            raise RuntimeError("injected fault: server.search")
        result = self._search_fn(function, env, axes, device=device,
                                 **kwargs)
        priors: dict = {}
        if self.cache_dir is not None:
            # Reload the search's spool table: its accumulated per-group
            # statistics become the record's servable priors.
            table = table_for(self.cache_dir, function, env.mesh, device,
                              env)
            priors = table.warm_priors()
        meta = {k: v for k, v in dataclasses.asdict(result).items()
                if k not in ("actions",)}
        record = PlanRecord(
            key=key,
            actions=canon.encode_key(tuple(tuple(a) for a in
                                           result.actions)),
            cost=result.cost,
            priors=priors,
            meta=meta,
        )
        self.store.put(record, exact_fp=exact_fp)
        return record

    def _reply(self, record: PlanRecord, tier: str,
               canon: CanonicalForm) -> dict:
        return {
            "tier": tier,
            "actions": [list(a) for a in canon.decode_key(record.actions)],
            "cost": record.cost,
            "priors": record.priors,
            "meta": dict(record.meta),
            "digest": record.key[0],
        }

    # -- transposition entries ----------------------------------------------

    def handle_table(self, message) -> dict:
        """Every transposition entry the server's spool holds for the
        request's *exact* fingerprint (local index space by construction).
        Empty without a ``cache_dir``."""
        (function, mesh, device, env, _canon,
         exact_fp) = self._request_context(message)
        entries = []
        priors: dict = {}
        if self.cache_dir is not None:
            table = table_for(self.cache_dir, function, mesh, device, env)
            entries = [([list(a) for a in key], cost)
                       for key, cost in table._costs.items()]
            priors = table.warm_priors()
        return {"exact_fp": exact_fp, "entries": entries, "priors": priors}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PartIR plan server: partitioning-as-a-service daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks an ephemeral port (printed)")
    parser.add_argument("--max-entries", type=int, default=None,
                        help="LRU plan-store cap "
                             "(default: $PARTIR_PLAN_STORE_ENTRIES or 512)")
    parser.add_argument("--cache-dir", default=None,
                        help="transposition/prior spool directory for "
                             "server-side searches")
    parser.add_argument("--store", default=None,
                        help="JSONL snapshot to load at start and save "
                             "on shutdown")
    parser.add_argument("--max-connections", type=int, default=64,
                        help="concurrent client connections accepted "
                             "(default 64; excess are closed at accept)")
    parser.add_argument("--idle-timeout", type=float, default=300.0,
                        help="seconds of request silence before a "
                             "connection is reaped (0 disables)")
    parser.add_argument("--request-deadline", type=float, default=None,
                        help="per-request handler deadline in seconds "
                             "(default: none)")
    args = parser.parse_args(argv)

    store = PlanStore(max_entries=args.max_entries)
    if args.store:
        loaded = store.load(args.store)
        print(f"partir-plan-server loaded {loaded} plans from {args.store}",
              flush=True)
    server = PlanServer(host=args.host, port=args.port, store=store,
                        cache_dir=args.cache_dir,
                        max_connections=args.max_connections,
                        idle_timeout_s=args.idle_timeout or None,
                        request_deadline_s=args.request_deadline)
    host, port = server.address
    print(f"partir-plan-server listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        if args.store:
            store.save(args.store)
            print(f"partir-plan-server saved {len(store)} plans to "
                  f"{args.store}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
