"""The plan server's LRU-evicting plan/prior store.

One :class:`PlanStore` holds the partition plans a
:class:`repro.auto.server.PlanServer` has computed, keyed on **two
tiers**:

* the **relaxed tier** — the canonicalized fingerprint of
  :mod:`repro.auto.fingerprint` plus the search parameters, under which
  isomorphic programs (alpha-renamed tags, permuted inputs) share one
  entry; plans are stored in *canonical* index space and translated into
  each requester's local space on the way out, and
* the **exact tier** — every exact :func:`function_fingerprint` that was
  ever served by an entry indexes back to it, so byte-identical programs
  hit without any canonicalization subtleties.

The store is deliberately **read-optimized and write-expensive** (in the
spirit of asymmetric-memory data structures: the read path is a dict
probe plus a recency-pointer move; the write path may evict, rebuild the
exact index, and rewrite the persistence log).  Reads vastly outnumber
writes on a warm server, so that is the right asymmetry — it is the same
design bias as the transposition table's append-only JSONL log, lifted
from "never rewrite" to "rewrite rarely, on eviction only".

Unlike the per-process JSONL tables (append-only, no eviction), the store
**caps its footprint**: past ``max_entries`` the least-recently-used plan
is dropped, together with its exact-tier index entries.  ``save``/``load``
persist the store as one JSONL snapshot so a restarted daemon warms up
from its predecessor's plans.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.auto.cache import _from_jsonable, _to_jsonable, _parse_key
from repro.auto.tree import ActionKey

#: Environment variable overriding the default entry cap.
ENV_MAX_ENTRIES = "PARTIR_PLAN_STORE_ENTRIES"
DEFAULT_MAX_ENTRIES = 512


def default_max_entries() -> int:
    """The configured entry cap (``PARTIR_PLAN_STORE_ENTRIES`` or 512)."""
    raw = os.environ.get(ENV_MAX_ENTRIES)
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_MAX_ENTRIES


@dataclasses.dataclass
class PlanRecord:
    """One cached partition plan, in canonical index space.

    ``actions`` are canonical-space wire tuples (translate with
    :meth:`repro.auto.fingerprint.CanonicalForm.decode_key`); ``priors``
    are the producing search's per-action-group statistics (index-free,
    so they need no translation); ``meta`` is the producing
    :class:`~repro.auto.search.SearchResult` rendered as a plain dict.
    """

    key: Tuple  # (relaxed digest, search-params key)
    actions: ActionKey
    cost: float
    priors: Dict[Tuple, Tuple[int, float]] = dataclasses.field(
        default_factory=dict)
    meta: Dict = dataclasses.field(default_factory=dict)
    hits: int = 0

    def to_json(self) -> dict:
        return {
            "key": _to_jsonable(self.key),
            "a": [list(action) for action in self.actions],
            "c": self.cost,
            "p": [[_to_jsonable(g), n, t]
                  for g, (n, t) in self.priors.items()],
            "m": self.meta,
        }

    @classmethod
    def from_json(cls, record: dict) -> "PlanRecord":
        return cls(
            key=_from_jsonable(record["key"]),
            actions=_parse_key(record["a"]),
            cost=float(record["c"]),
            priors={_from_jsonable(g): (int(n), float(t))
                    for g, n, t in record.get("p", [])},
            meta=dict(record.get("m", {})),
        )


class PlanStore:
    """LRU map of ``(relaxed digest, params key) -> PlanRecord`` plus the
    exact-fingerprint index.  Thread-safe; every public method takes the
    store lock."""

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = (max_entries if max_entries is not None
                            else default_max_entries())
        self._records: "OrderedDict[Tuple, PlanRecord]" = OrderedDict()
        self._exact: Dict[Tuple, Tuple] = {}  # (exact fp, params) -> key
        self._lock = threading.Lock()
        self.evictions = 0
        self.hits_exact = 0
        self.hits_relaxed = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def lookup(self, exact_fp: str, digest: str,
               params_key: Tuple) -> Optional[Tuple[PlanRecord, str]]:
        """The freshest record for a request, with the tier that matched
        (``"exact"`` | ``"relaxed"``), or None.  Counts the hit/miss and
        refreshes recency; an exact probe that matches through the relaxed
        key registers the exact fingerprint for next time."""
        with self._lock:
            key = self._exact.get((exact_fp, params_key))
            if key is not None:
                record = self._records.get(key)
                if record is not None:
                    self._records.move_to_end(key)
                    record.hits += 1
                    self.hits_exact += 1
                    return record, "exact"
            record = self._records.get((digest, params_key))
            if record is not None:
                self._records.move_to_end((digest, params_key))
                record.hits += 1
                self.hits_relaxed += 1
                self._exact[(exact_fp, params_key)] = (digest, params_key)
                return record, "relaxed"
            self.misses += 1
            return None

    def put(self, record: PlanRecord, exact_fp: Optional[str] = None
            ) -> None:
        """Insert (or refresh) a record; evicts LRU entries past the cap,
        dropping their exact-tier index entries with them."""
        with self._lock:
            self._records[record.key] = record
            self._records.move_to_end(record.key)
            if exact_fp is not None:
                self._exact[(exact_fp, record.key[1])] = record.key
            while len(self._records) > self.max_entries:
                evicted_key, _ = self._records.popitem(last=False)
                self._exact = {
                    probe: key for probe, key in self._exact.items()
                    if key != evicted_key
                }
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._records),
                "max_entries": self.max_entries,
                "evictions": self.evictions,
                "hits_exact": self.hits_exact,
                "hits_relaxed": self.hits_relaxed,
                "misses": self.misses,
            }

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> None:
        """Snapshot the store as JSONL (oldest first, so a reload
        reconstructs the same recency order).  Atomic via temp + rename."""
        with self._lock:
            records: List[PlanRecord] = list(self._records.values())
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record.to_json()) + "\n")
        os.replace(tmp_path, path)

    def load(self, path: str) -> int:
        """Merge a snapshot in (newest-recency last); returns the number
        of records loaded.  Corrupt lines are skipped — same discipline as
        the transposition log."""
        if not os.path.exists(path):
            return 0
        loaded = 0
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = PlanRecord.from_json(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    continue
                self.put(record)
                loaded += 1
        return loaded
