"""Automatic partitioning (the AutomaticPartition tactic's search)."""

from repro.auto.search import SearchResult, mcts_search, run_automatic_partition

__all__ = ["SearchResult", "mcts_search", "run_automatic_partition"]
