"""Automatic partitioning (the AutomaticPartition tactic's search).

Package map:

* :mod:`repro.auto.search` — public entry points (``mcts_search``,
  ``run_automatic_partition``) and ``SearchResult``.
* :mod:`repro.auto.tree` — UCT tree policy, virtual loss, rollout RNG.
* :mod:`repro.auto.evaluator` — canonical-action-set scoring pipeline.
* :mod:`repro.auto.scheduler` — serial / batched / process backends.
* :mod:`repro.auto.sharedmemo` — cross-worker shared plan memo.
* :mod:`repro.auto.cache` — transposition table + on-disk persistence
  with load-time compaction.
"""

from repro.auto.cache import TranspositionTable, function_fingerprint
from repro.auto.evaluator import (
    ACTION_SPACES,
    ROLLOUT_ENVS,
    Evaluator,
    action_group_key,
    candidate_actions,
)
from repro.auto.scheduler import BACKENDS, RolloutScheduler, make_scheduler
from repro.auto.search import SearchResult, mcts_search, run_automatic_partition
from repro.auto.tree import TreePolicy, canonical_key

__all__ = [
    "ACTION_SPACES",
    "action_group_key",
    "candidate_actions",
    "BACKENDS",
    "Evaluator",
    "ROLLOUT_ENVS",
    "RolloutScheduler",
    "SearchResult",
    "TranspositionTable",
    "TreePolicy",
    "canonical_key",
    "function_fingerprint",
    "make_scheduler",
    "mcts_search",
    "run_automatic_partition",
]
