"""Automatic partitioning (the AutomaticPartition tactic's search).

Package map:

* :mod:`repro.auto.search` — public entry points (``mcts_search``,
  ``run_automatic_partition``) and ``SearchResult``.
* :mod:`repro.auto.tree` — UCT tree policy, virtual loss, rollout RNG.
* :mod:`repro.auto.evaluator` — canonical-action-set scoring pipeline.
* :mod:`repro.auto.scheduler` — serial / batched / process / remote
  backends.
* :mod:`repro.auto.sharedmemo` — cross-worker shared plan memo.
* :mod:`repro.auto.cache` — transposition table + on-disk persistence
  with load-time compaction.
* :mod:`repro.auto.prune` — the action-space condenser: propagation
  probes bucket candidates into equivalence classes; one representative
  each survives.
* :mod:`repro.auto.prior` — the deterministic feature-hashed learned
  rollout prior fit from persisted tree statistics.
* :mod:`repro.auto.exact` — branch-and-bound exact solver over the
  condensed space (the small-instance regret oracle).
* :mod:`repro.auto.fingerprint` — relaxed (canonicalized) fingerprints:
  alpha-renamed / input-permuted isomorphic programs share one key.
* :mod:`repro.auto.planstore` — the plan server's LRU plan/prior store.
* :mod:`repro.auto.rpc` / :mod:`repro.auto.server` — the
  partitioning-as-a-service daemon and its socket protocol.
"""

from repro.auto.cache import TranspositionTable, function_fingerprint
from repro.auto.evaluator import (
    ACTION_SPACES,
    ROLLOUT_ENVS,
    Evaluator,
    action_group_key,
    candidate_actions,
)
from repro.auto.exact import ExactBudgetExceeded, ExactResult, exact_search
from repro.auto.fingerprint import (
    CanonicalForm,
    canonicalize,
    relaxed_fingerprint,
)
from repro.auto.planstore import PlanRecord, PlanStore
from repro.auto.prior import PRIOR_MODES, LinearPrior
from repro.auto.prune import PruneReport, condense, probe_action
from repro.auto.scheduler import (
    BACKENDS,
    RolloutScheduler,
    SchedulerUnavailable,
    make_scheduler,
)
from repro.auto.search import SearchResult, mcts_search, run_automatic_partition
from repro.auto.tree import TreePolicy, canonical_key

__all__ = [
    "ACTION_SPACES",
    "action_group_key",
    "candidate_actions",
    "BACKENDS",
    "CanonicalForm",
    "Evaluator",
    "ExactBudgetExceeded",
    "ExactResult",
    "LinearPrior",
    "PRIOR_MODES",
    "PlanRecord",
    "PlanStore",
    "PruneReport",
    "ROLLOUT_ENVS",
    "RolloutScheduler",
    "SchedulerUnavailable",
    "SearchResult",
    "TranspositionTable",
    "TreePolicy",
    "canonical_key",
    "canonicalize",
    "condense",
    "exact_search",
    "function_fingerprint",
    "make_scheduler",
    "mcts_search",
    "probe_action",
    "relaxed_fingerprint",
    "run_automatic_partition",
]
