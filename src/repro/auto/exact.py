"""Exact small-instance solver: branch-and-bound over the pruned space.

The MCTS is a sampler; this module is the *oracle*.  On instances small
enough to enumerate, :func:`exact_search` certifies the true optimum of
the search objective over **every canonical action set** drawn from the
(condensed) candidate list — the regret benchmark Fig 11 and the test
suite measure the 24-rollout MCTS against, in the spirit of the related
work's exact solves over control-flow constraint graphs (PAPERS.md, Cai &
Goharshady).

The enumeration is the classic subset tree: a node is a canonical set,
its children extend it with candidates strictly greater (wire-tuple
order) than its largest member, so every subset is visited exactly once
and the DFS path *is* the canonical sorted order.  That makes the undo
rollout engine the perfect substrate: moving from one DFS node to the
next is one rollback + one extension, and the memoized propagation
deltas replay on backtrack.  Two prunes keep the tree tractable:

* **bound prune** — :func:`repro.sim.costmodel.objective_lower_bound`
  with the free parallelism still available to the subtree (the distinct
  mesh axes of the remaining candidate suffix).  No extension can beat
  the bound, so a subtree whose bound already meets the incumbent is cut.
* **no-op prune** — an action that writes nothing after its prefix
  (:meth:`repro.auto.evaluator.Evaluator.last_extension_writes` == 0)
  no-ops after every extension of that prefix as well, since canonical
  sets apply in sorted order; the whole subtree is cost-identical to
  sibling subsets already enumerated and is cut.

With ``prune=True`` (default) the candidate list is condensed first
(:mod:`repro.auto.prune`), which is what makes small instances *actually*
small: equivalence classes collapse the exponent's base.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.core.sharding import ShardingEnv
from repro.ir.function import Function
from repro.sim import costmodel
from repro.sim.devices import TPU_V3, DeviceSpec

from repro.auto import prune as prune_mod
from repro.auto.cache import table_for
from repro.auto.evaluator import Evaluator, candidate_actions

ActionTuple = Tuple[int, int, int, str]


class ExactBudgetExceeded(RuntimeError):
    """The subset tree outgrew ``max_nodes`` — the instance is not small.

    Raised instead of returning a silently-unproven "optimum": an exact
    oracle that truncates is worse than no oracle."""


@dataclasses.dataclass
class ExactResult:
    """A certified optimum over the (condensed) candidate subset lattice."""

    actions: List[ActionTuple]
    cost: float
    #: Candidate actions the subset tree was built over (post-condenser).
    candidates: int
    #: Subsets actually scored (the empty set included).
    nodes: int
    #: Subtrees cut by the admissible lower bound.
    bound_pruned: int
    #: Subtrees cut because their root action no-opped after its prefix.
    noop_pruned: int
    #: Condenser classes (0 when ``prune=False``).
    prune_classes: int


def exact_search(
    function: Function,
    env: ShardingEnv,
    axes: Sequence[str],
    device: DeviceSpec = TPU_V3,
    prune: bool = True,
    incremental: bool = True,
    streaming: bool = True,
    max_inputs: int = 48,
    action_space: str = "tagged",
    max_tag_points: int = 16,
    max_nodes: int = 200_000,
    cache_dir: Optional[str] = None,
) -> ExactResult:
    """Certify the optimum canonical action set by branch and bound.

    Shares the search's full evaluation pipeline (root fixed point,
    undo-log prefix engine, streaming estimator), so the certified costs
    are bit-comparable with what :func:`repro.auto.search.mcts_search`
    reports.  Ties between equal-cost optima resolve to the
    lexicographically smallest set — the same incumbent rule the MCTS
    uses, so `mcts best == exact best` is a meaningful equality.
    ``cache_dir`` reuses persisted condenser probe signatures and
    contributes every scored subset back to the transposition log.
    """
    table = table_for(cache_dir, function, env.mesh, device, env)
    evaluator = Evaluator(
        function, env, device, incremental=incremental, memoize=True,
        streaming=streaming, table=table, rollout_env="undo",
    )
    candidates = candidate_actions(function, env, axes, max_inputs,
                                   action_space=action_space,
                                   max_tag_points=max_tag_points)
    prune_classes = 0
    if prune and candidates:
        report = prune_mod.condense(
            function, evaluator.root, candidates, incremental=incremental,
            known_signatures=table.warm_probes(),
        )
        candidates = report.kept
        prune_classes = report.classes
        table.store_probes(report.signatures)
    order = sorted(candidates)
    # free parallelism of the suffix starting at j: the product of the
    # distinct mesh axes the remaining candidates could still introduce
    # (an axis divides an op's local FLOPs at most once, so this is the
    # largest factor any extension can shave off compute or peak memory).
    suffix_free: List[float] = [1.0] * (len(order) + 1)
    seen_axes: set = set()
    free = 1.0
    for j in range(len(order) - 1, -1, -1):
        axis = order[j][3]
        if axis not in seen_axes:
            seen_axes.add(axis)
            free *= env.mesh.size(axis)
        suffix_free[j] = free

    best_key: Tuple[ActionTuple, ...] = ()
    best_cost = evaluator.compute(())
    table.store((), best_cost)
    root_estimate = evaluator.last_estimate
    counters = {"nodes": 1, "bound": 0, "noop": 0}

    def descend(key: Tuple[ActionTuple, ...], start: int,
                estimate) -> None:
        nonlocal best_key, best_cost
        for j in range(start, len(order)):
            # Bound the whole subtree rooted at key + order[j] using the
            # parent's estimate: the child is itself an extension of key
            # drawn from order[j:], so the parent bound covers it too.
            bound = costmodel.objective_lower_bound(
                estimate, device, suffix_free[j])
            # Strict: a subtree that can only *tie* the incumbent still
            # descends, so the witness honors the lexicographic tie-break
            # the MCTS incumbent rule uses.
            if bound > best_cost:
                counters["bound"] += 1
                # suffix_free shrinks monotonically with j, so every later
                # sibling's bound is at least this one: cut them all.
                counters["bound"] += len(order) - j - 1
                return
            new_key = key + (order[j],)
            if counters["nodes"] >= max_nodes:
                raise ExactBudgetExceeded(
                    f"exact_search exceeded max_nodes={max_nodes} at "
                    f"{len(order)} candidates; this instance is not small"
                )
            cost = evaluator.compute(new_key)
            counters["nodes"] += 1
            table.store(new_key, cost)
            child_estimate = evaluator.last_estimate
            writes = evaluator.last_extension_writes()
            if cost < best_cost or (cost == best_cost
                                    and new_key < best_key):
                best_cost = cost
                best_key = new_key
            if writes == 0:
                # order[j] no-ops after this prefix — and, since canonical
                # sets apply sorted, after every extension: the subtree
                # duplicates sibling subsets' costs.
                counters["noop"] += 1
                continue
            descend(new_key, j + 1, child_estimate)

    try:
        descend((), 0, root_estimate)
    finally:
        table.flush()
    return ExactResult(
        actions=list(best_key),
        cost=best_cost,
        candidates=len(order),
        nodes=counters["nodes"],
        bound_pruned=counters["bound"],
        noop_pruned=counters["noop"],
        prune_classes=prune_classes,
    )
