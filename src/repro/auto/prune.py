"""The action-space condenser: propagation-probe equivalence pruning.

PR 5's widened action space is redundant by construction: a ``TileTagged``
on an interior value often propagates to exactly the fixed point an input
tiling reaches (tiling a matmul output's free dim backward-propagates to
the weight column it came from), and a ``SumTagged`` on a contracting
factor writes precisely what tiling the factor's operand would have made
propagation write.  Every such duplicate action burns rollout budget on a
schedule the search has already scored and splits the per-group prior
statistics across equivalent decisions.

The condenser runs once per search, between candidate enumeration and the
first rollout:

1. **probe** — for each candidate, checkpoint the evaluator's mutable root
   env, apply the action, run one incremental-propagation fixed point,
   collect the forward write delta (:meth:`ShardingEnv.writes_since`), and
   roll back.  The env funnels every write through a pointer-comparing
   ``set_sharding``, so the delta is exactly the set of values whose fixed
   point differs from the root's — the action's *semantic footprint*.
2. **bucket** — actions whose footprints digest identically (value index +
   interned portable sharding, order-independent) are propagation
   equivalent: every canonical set extending one of them scores the same
   cost as the set extending any other.  They share a bucket.
3. **representative** — each bucket keeps its smallest action tuple (the
   same order the incumbent rule breaks exact cost ties with, so pruned
   and unpruned searches converging on an equivalent best report the same
   wire tuples); an action whose probe is a no-op (empty delta — it was
   enumerated as root-legal but propagation already subsumes it) is
   dominated by not acting at all and is dropped outright.

Probe digests persist in the transposition log (one record per action; see
:meth:`repro.auto.cache.TranspositionTable.store_probes`), so a warm run —
or the plan server re-searching a known fingerprint — buckets from the log
without touching the env: the pre-pass then costs microseconds, far under
the sub-10%-of-one-rollout overhead budget Fig 11 gates.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.propagate import propagate
from repro.core.sharding import ShardingEnv, enumerate_function_values
from repro.ir.function import Function

#: An action wire tuple ``(kind, index, dim, axis)``.
ActionTuple = Tuple[int, int, int, str]


@dataclasses.dataclass
class PruneReport:
    """What one condenser pass kept, dropped and measured.

    ``kept`` preserves the candidate enumeration's documented total order
    (it is a subsequence of the input).  ``signatures`` maps every probed
    action to its fixed-point digest — the equivalence-class labels a
    persistent table stores so later runs skip the probes.
    """

    kept: List[ActionTuple]
    total: int = 0
    classes: int = 0
    dropped_equivalent: int = 0
    dropped_noop: int = 0
    probes_run: int = 0
    probes_reused: int = 0
    prune_time_s: float = 0.0
    signatures: Dict[ActionTuple, str] = dataclasses.field(
        default_factory=dict)


#: Digest of the empty footprint: the probe found the action to be a
#: propagation no-op at the root (dominated by not acting at all).
NOOP_SIGNATURE = "noop"


def footprint_digest(delta: Sequence[Tuple[int, Tuple]]) -> str:
    """Stable hex digest of one probe's fixed-point footprint.

    ``delta`` pairs canonical value indices with portable shardings; the
    digest is order-independent (sorted) and process-independent (value
    indices and portable shardings are both canonical-walk-derived), so
    digests computed by different runs — or loaded from the transposition
    log — compare equal exactly when the footprints match.
    """
    if not delta:
        return NOOP_SIGNATURE
    hasher = hashlib.blake2b(digest_size=12)
    for index, portable in sorted(delta):
        hasher.update(repr((index, portable)).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def probe_action(function: Function, env: ShardingEnv, action: ActionTuple,
                 *, incremental: bool = True,
                 value_index: Optional[Dict] = None) -> str:
    """One propagation probe: the action's fixed-point footprint digest.

    Checkpoints ``env``, applies the action, propagates to the fixed
    point, reads the forward write delta and rolls back — the env is
    bit-identical afterwards (undo-log restoration), so probing the
    search's live mutable root between evaluations is safe.
    """
    # Local import: evaluator imports prune's sibling helpers; keep the
    # module graph acyclic at import time.
    from repro.auto.evaluator import try_apply_action

    if value_index is None:
        value_index = {
            value: i
            for i, value in enumerate(enumerate_function_values(function))
        }
    token = env.checkpoint()
    try:
        if try_apply_action(function, env, action):
            propagate(function, env, incremental=incremental)
        delta = [
            (value_index[value], sharding.to_portable())
            for value, sharding in env.writes_since(token)
        ]
    finally:
        env.rollback(token)
    return footprint_digest(delta)


def condense(function: Function, env: ShardingEnv,
             candidates: Sequence[ActionTuple], *,
             incremental: bool = True,
             known_signatures: Optional[Dict[ActionTuple, str]] = None
             ) -> PruneReport:
    """Condense ``candidates`` to one representative per equivalence class.

    ``env`` must be at its propagation fixed point (the evaluator's root
    is).  ``known_signatures`` supplies persisted probe digests (from
    :meth:`repro.auto.cache.TranspositionTable.warm_probes`); any action
    covered there skips its probe.  The output order is the input order
    with non-representatives removed, and the choice of representative —
    the minimum wire tuple of each bucket — does not depend on which
    signatures were warm, so warm and cold condenser passes are
    bit-identical.
    """
    t0 = time.perf_counter()
    report = PruneReport(kept=[], total=len(candidates))
    known = known_signatures or {}
    value_index = {
        value: i
        for i, value in enumerate(enumerate_function_values(function))
    }
    buckets: Dict[str, ActionTuple] = {}
    signatures: Dict[ActionTuple, str] = {}
    for action in candidates:
        signature = known.get(action)
        if signature is not None:
            report.probes_reused += 1
        else:
            signature = probe_action(function, env, action,
                                     incremental=incremental,
                                     value_index=value_index)
            report.probes_run += 1
        signatures[action] = signature
        if signature == NOOP_SIGNATURE:
            continue
        representative = buckets.get(signature)
        if representative is None or action < representative:
            buckets[signature] = action
    keep = set(buckets.values())
    report.kept = [action for action in candidates if action in keep]
    report.classes = len(buckets)
    report.dropped_noop = sum(
        1 for action in candidates
        if signatures[action] == NOOP_SIGNATURE
    )
    report.dropped_equivalent = (report.total - len(report.kept)
                                 - report.dropped_noop)
    report.signatures = signatures
    report.prune_time_s = time.perf_counter() - t0
    return report
