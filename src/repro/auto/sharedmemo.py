"""Cross-worker shared plan memo for the ``process`` rollout backend.

PR 3 gave every search worker its own evaluator — and therefore its own
per-op lowering-plan and reconcile-chain memos, re-planned cold in every
process (ROADMAP: "the workers' plan/prefix caches are private").  This
module closes that gap with a **shared append-only record log in a
``multiprocessing.shared_memory`` segment**: whichever process first plans
an ``(op, adjacent shardings)`` neighborhood or prices a reconcile chain
publishes the entry, and every other process adopts it on its next poll
instead of recomputing.

Wire format (all offsets little-endian):

* bytes ``0:8`` — committed length of the record area (written last, under
  the lock, so readers never observe a half-written record),
* then records, each ``[u32 length][u32 crc32][pickle payload]``.

The per-record CRC covers the payload: a reader that finds a mismatch
(a torn write from a publisher killed mid-record, or plain memory
corruption) *skips* that record — counted in
:attr:`SharedMemoStore.corrupt_skipped`, surfaced by a one-shot
``RuntimeWarning`` — instead of unpickling garbage.  Skipping is safe
for the same reason the log is append-only: a record is pure cache
(a plan or chain some process would otherwise recompute), so dropping
one costs a recomputation, never correctness.

A payload is one of::

    ("p", op_index, sig_ids, op_plan)      # per-op lowering plan
    ("c", (value_type, sig_id, target_layout, reduced_axes), chain_entry)

``op_index`` is the op's position in the function's canonical pre-order
walk — both sides hold structurally-identical traced functions, so the
index is the op's portable name (exactly like value indices in
``ShardingEnv.portable_state``).  ``sig_ids`` / ``sig_id`` are
**interned-signature ids on the wire**: the portable
:meth:`~repro.core.sharding.Sharding.signature` tuples standing in for the
process-local intern ids; the reader interns them back to its own ids.

The log is append-only within the segment: when it fills, publishers stop
writing (readers keep everything already committed) — the same write-lean
discipline as the transposition table's JSONL log.  A cache hit never
touches the segment; only cold computations publish.
"""

from __future__ import annotations

import os
import pickle
import struct
import warnings
import zlib
from typing import List, Optional, Tuple

from repro.auto import faults

try:  # pragma: no cover - exercised implicitly by import success
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - ancient pythons only
    _shm = None

#: Default segment size: generously fits every distinct plan/chain of the
#: benchmark-scale searches (a plan pickles to ~1-2 KB; searches produce
#: thousands, not millions, of distinct neighborhoods).
DEFAULT_SIZE = 16 * 1024 * 1024

#: Environment variable overriding the default segment size (bytes).
ENV_SIZE = "PARTIR_SHARED_MEMO_BYTES"


def default_size() -> int:
    """The configured segment size: ``PARTIR_SHARED_MEMO_BYTES`` when set
    to a positive integer, else :data:`DEFAULT_SIZE`."""
    raw = os.environ.get(ENV_SIZE)
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_SIZE

_HEADER = struct.Struct("<Q")
#: Per-record header: ``[u32 payload length][u32 payload crc32]``.
_RECHDR = struct.Struct("<II")


def available() -> bool:
    return _shm is not None


class SharedMemoStore:
    """One shared append-log segment plus the lock serializing writers.

    The parent creates it before forking workers (:meth:`create`); workers
    attach by name (:meth:`attach`).  ``publish`` appends records;
    ``poll`` returns every record committed since the caller's last poll.
    Readers parse record bytes outside the lock — committed bytes are
    immutable, so only the header read needs serialization.
    """

    def __init__(self, segment, lock, size: int, owner: bool):
        self._segment = segment
        self._lock = lock
        self._size = size
        self._owner = owner
        self._full = False
        self._warned_full = False
        self._closed = False
        #: Records this process's polls skipped over a CRC mismatch.
        self.corrupt_skipped = 0
        self._warned_corrupt = False

    @property
    def full(self) -> bool:
        """Has this process observed the segment full?  Once true, this
        process publishes nothing further (committed records stay
        readable); the search surfaces the condition as
        ``SearchResult.shared_memo_full``."""
        return self._full

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, context,
               size: Optional[int] = None) -> "SharedMemoStore":
        """Create a fresh segment; ``size=None`` uses
        :func:`default_size` (``PARTIR_SHARED_MEMO_BYTES`` or the baked-in
        default)."""
        if size is None:
            size = default_size()
        segment = _shm.SharedMemory(create=True, size=size)
        _HEADER.pack_into(segment.buf, 0, 0)
        store = cls(segment, context.Lock(), size, owner=True)
        store._start_method = context.get_start_method()
        return store

    @classmethod
    def attach(cls, name: str, lock, size: int,
               start_method: str = "fork") -> "SharedMemoStore":
        segment = _shm.SharedMemory(name=name)
        if start_method == "spawn":
            # A spawned worker has its own resource-tracker process, and
            # attaching registered the segment there — on worker exit that
            # tracker would unlink the segment out from under the parent
            # and its siblings.  Unregister: the creator owns cleanup.
            # (Forked workers share the parent's tracker, whose name cache
            # dedups the attach registration — unregistering there would
            # strip the parent's own entry instead.)
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        return cls(segment, lock, size, owner=False)

    def handle(self) -> Tuple[str, object, int, str]:
        """(name, lock, size, start method) — picklable through Pool
        initargs."""
        return (self._segment.name, self._lock, self._size,
                getattr(self, "_start_method", "fork"))

    def __getstate__(self):
        # Stores cross process boundaries through handle()/attach() (Pool
        # initargs), never through pickle: a pickled copy keeps only the
        # bookkeeping — crucially ``_warned_full``, so a store that
        # round-trips inside some larger pickled object can never re-emit
        # its one-shot warning — and comes back segment-less and inert.
        state = self.__dict__.copy()
        state["_segment"] = None
        state["_lock"] = None
        state["_owner"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def close(self) -> None:
        # An estimator may still hold a reference (the search's local
        # evaluator keeps scoring — e.g. witness minimization — after the
        # scheduler tears its pool down): a closed store goes *inert*
        # rather than handing out an unmapped buffer.
        self._closed = True
        try:
            self._segment.close()
        except Exception:
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._segment.unlink()
            except Exception:
                pass

    # -- records ------------------------------------------------------------

    def _warn_once(self) -> None:
        if self._warned_full:
            return
        self._warned_full = True
        warnings.warn(
            f"cross-worker shared plan memo is full "
            f"({self._size} bytes): later cold plans/chains will not "
            f"be pooled across processes (results are unaffected; "
            f"raise the store size to restore pooling)",
            RuntimeWarning,
            stacklevel=3,
        )

    def note_remote_full(self) -> None:
        """A worker reported its view of the segment full: mark this side
        full too and emit the owning process's one-shot warning.  Workers
        themselves never warn (see :meth:`publish`), so the warning fires
        exactly once in the main process regardless of which side filled
        first — or of how many workers hit the limit."""
        self._full = True
        self._warn_once()

    def publish(self, payloads: List[tuple]) -> int:
        """Append pickled payloads; returns how many fit.

        On the first append that does not fit, the store goes *full* for
        this process and every later ``publish`` is a silent no-op (the
        log is append-only within its fixed-size segment — no wraparound
        or eviction), so later cold computations stay process-local
        instead of pooled.  Only the *owning* (main-process) store emits
        the one-shot :class:`RuntimeWarning`; an attached worker store
        just sets its flag, which rides back with the wave results and
        surfaces through :meth:`note_remote_full`.
        """
        if (self._full or not payloads or self._segment is None
                or self._closed):
            return 0
        blobs = [pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL)
                 for p in payloads]
        written = 0
        buf = self._segment.buf
        with self._lock:
            offset = 8 + _HEADER.unpack_from(buf, 0)[0]
            for blob in blobs:
                crc = zlib.crc32(blob)
                if faults.should_fire("sharedmemo.publish"):
                    # Torn write: the committed record's bytes don't match
                    # its CRC (as if the publisher died mid-memcpy and the
                    # header commit raced ahead).  Readers must skip it.
                    blob = bytes(b ^ 0xFF for b in blob)
                end = offset + _RECHDR.size + len(blob)
                if end > self._size:
                    self._full = True
                    break
                _RECHDR.pack_into(buf, offset, len(blob), crc)
                buf[offset + _RECHDR.size:end] = blob
                offset = end
                written += 1
            _HEADER.pack_into(buf, 0, offset - 8)
        if self._full and self._owner:
            self._warn_once()
        return written

    def poll(self, offset: int) -> Tuple[int, List[tuple]]:
        """Records committed since ``offset`` (a value previously returned
        by this method; start at 0).  Returns ``(new_offset, payloads)``."""
        if self._segment is None or self._closed:  # detached: inert
            return offset, []
        buf = self._segment.buf
        with self._lock:
            committed = _HEADER.unpack_from(buf, 0)[0]
        out: List[tuple] = []
        position = 8 + offset
        end = 8 + committed
        while position < end:
            length, crc = _RECHDR.unpack_from(buf, position)
            payload_at = position + _RECHDR.size
            record = bytes(buf[payload_at:payload_at + length])
            position = payload_at + length
            if zlib.crc32(record) != crc:
                self.corrupt_skipped += 1
                if not self._warned_corrupt:
                    self._warned_corrupt = True
                    warnings.warn(
                        "cross-worker shared plan memo: skipping a "
                        "corrupt record (CRC mismatch); the entry will "
                        "be recomputed locally (results are unaffected)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                continue
            out.append(pickle.loads(record))
        return committed, out


def create_store(context,
                 size: Optional[int] = None) -> Optional[SharedMemoStore]:
    """A new store (``size=None`` -> :func:`default_size`), or None when
    shared memory is unavailable."""
    if _shm is None:
        return None
    try:
        return SharedMemoStore.create(context, size=size)
    except OSError:  # e.g. /dev/shm mounted noexec/ro or size exhausted
        return None


def attach_store(handle) -> Optional[SharedMemoStore]:
    if _shm is None or handle is None:
        return None
    name, lock, size, start_method = handle
    try:
        return SharedMemoStore.attach(name, lock, size, start_method)
    except OSError:
        return None
