"""The learned rollout prior: a deterministic feature-hashed linear model.

PR 5's per-group priors are flat visit/value means: an action group the
transposition log has never seen gets no prior at all, and groups that are
*obviously* alike — the same op kind contracted along a different mesh
axis, the same decision on a differently-sized weight — share nothing.
This module replaces the flat means with a tiny linear model over hashed
features of the group key ``(action kind, op kind, dim, mesh axis,
sharding signature)``: warm statistics train it once per search, and it
then scores **every** candidate group, seen or unseen, so warm expansion
generalizes across structurally-similar decisions instead of replaying
only exact group matches.

Determinism contract (the part the cross-backend regression suite pins):

* the model is **fit once, at search start**, from the warm (persisted)
  per-group statistics — a fixed input every scheduler backend shares.
  Training examples are sorted by their canonical repr, epochs and
  learning rate are fixed constants, and feature hashing uses
  ``blake2b`` (never Python's salted ``hash``), so identical warm
  statistics produce bit-identical weights in every process — serial,
  batched, process-pool workers and the plan server all agree.
* live in-run statistics are *accumulated* (and persisted afterwards)
  but never refold into the model mid-search: that would couple
  expansion order to each backend's wave timing, exactly what the
  warm-gating of :class:`repro.auto.tree.TreePolicy` exists to prevent.
* a cold search (no warm statistics) builds no model at all and expands
  uniformly at random, draw-for-draw identical to the prior-free policy.

The model is deliberately small: a few hundred float buckets, a handful
of crossed features, plain-Python IEEE arithmetic.  It is a *ranking*
prior — only relative scores matter to expansion — not a cost predictor.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

#: Valid ``prior=`` modes of the search: ``"learned"`` (default — this
#: module's model over warm statistics), ``"group"`` (PR 5's flat
#: per-group warm means), ``"none"`` (uniform expansion even when warm).
PRIOR_MODES = ("learned", "group", "none")


def _bucket(feature: str, buckets: int) -> int:
    digest = hashlib.blake2b(feature.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % buckets


class LinearPrior:
    """Feature-hashed linear scorer over action-group keys.

    Group keys are ``(kind, op_kind, dim, axis, sharding)`` tuples (see
    :func:`repro.auto.evaluator.action_group_key`); pre-PR-8 logs carry
    legacy 4-tuples without the op kind, which featurize with a ``"?"``
    placeholder so old statistics still train a usable model.
    """

    BUCKETS = 256
    EPOCHS = 6
    LEARNING_RATE = 0.25
    L2 = 1e-4
    #: Cap on one example's visit weight: a single heavily-revisited group
    #: must not drown every other example's gradient.
    MAX_EXAMPLE_WEIGHT = 16

    __slots__ = ("weights", "examples", "_bucket_cache")

    def __init__(self):
        self.weights: List[float] = [0.0] * self.BUCKETS
        self.examples = 0
        self._bucket_cache: Dict[Tuple, Tuple[int, ...]] = {}

    # -- featurization -------------------------------------------------------

    @staticmethod
    def features(group: Tuple) -> List[str]:
        """The group's hashed-feature names (order is part of the model)."""
        if len(group) == 5:
            kind, op_kind, dim, axis, sharding = group
        else:  # legacy 4-tuple group key (pre-op-kind logs)
            kind, dim, axis, sharding = group
            op_kind = "?"
        s = repr(sharding)
        return [
            "bias",
            f"k:{kind}",
            f"o:{op_kind}",
            f"d:{dim}",
            f"a:{axis}",
            f"s:{s}",
            f"ko:{kind}|{op_kind}",
            f"ka:{kind}|{axis}",
            f"kd:{kind}|{dim}",
            f"oa:{op_kind}|{axis}",
            f"od:{op_kind}|{dim}",
            f"os:{op_kind}|{s}",
            f"kas:{kind}|{axis}|{s}",
        ]

    def _buckets_for(self, group: Tuple) -> Tuple[int, ...]:
        cached = self._bucket_cache.get(group)
        if cached is None:
            cached = tuple(
                _bucket(feature, self.BUCKETS)
                for feature in self.features(group)
            )
            self._bucket_cache[group] = cached
        return cached

    # -- scoring & fitting ---------------------------------------------------

    def score(self, group: Tuple) -> float:
        weights = self.weights
        return sum(weights[b] for b in self._buckets_for(group))

    def fit_one_epoch(self, examples: Sequence[Tuple[Tuple, float,
                                                     float]]) -> None:
        weights = self.weights
        lr = self.LEARNING_RATE
        l2 = self.L2
        for group, target, weight in examples:
            buckets = self._buckets_for(group)
            prediction = sum(weights[b] for b in buckets)
            step = lr * weight * (target - prediction) / len(buckets)
            for b in buckets:
                weights[b] += step - lr * l2 * weights[b]

    @classmethod
    def fit(cls, warm_priors: Dict[Tuple, Tuple[int, float]]
            ) -> Optional["LinearPrior"]:
        """Train a model from persisted per-group statistics, or ``None``
        when there is nothing to learn from (the cold-run gate: no warm
        statistics, no model, uniform expansion).

        The example order (canonical repr sort), epoch count and step
        sizes are fixed, so the same statistics always yield bit-identical
        weights — the model is part of the search's seeded deterministic
        state, not of any backend's execution order.
        """
        examples: List[Tuple[Tuple, float, float]] = []
        for group, (visits, total) in sorted((warm_priors or {}).items(),
                                             key=repr):
            if visits <= 0:
                continue
            weight = min(visits, cls.MAX_EXAMPLE_WEIGHT) / \
                cls.MAX_EXAMPLE_WEIGHT
            examples.append((group, total / visits, weight))
        if not examples:
            return None
        model = cls()
        model.examples = len(examples)
        for _ in range(cls.EPOCHS):
            model.fit_one_epoch(examples)
        return model
