"""Deterministic fault injection for the search fabric.

Real fleets lose workers mid-wave, reset connections mid-frame, tear log
writes and exhaust shared-memory segments.  The search survives all of
those (see the degradation ladder in ``docs/ARCHITECTURE.md``) because
every rollout is a pure function of the canonical action set — any lost
work can be re-executed bit-identically by a survivor.  This module is
how that claim is *tested*: a process-wide :class:`FaultPlan` scripts
exact failure schedules against named **injection sites** compiled into
the production code paths, so the chaos suite can replay the same
crash at the same instruction on every run.

Sites (each is checked once per site *invocation*, counted per process):

==========================  =====================================================
``worker.exit``             a process-backend worker ``os._exit``\\ s instead of
                            evaluating (simulates an OOM-kill / segfault)
``rpc.send``                a framed socket send raises ``ConnectionResetError``
``rpc.recv``                a framed socket receive raises
                            ``ConnectionResetError``
``sharedmemo.publish``      a shared-memo record is committed with corrupted
                            payload bytes (simulates a torn write)
``cache.append``            a transposition-log append stops mid-line
                            (simulates a crash during ``flush``)
``server.search``           a server-side plan search raises (simulates a
                            search timeout / crash on the daemon)
==========================  =====================================================

A plan is **installed process-wide** (:func:`install`) and exported
through the ``PARTIR_FAULT_PLAN`` environment variable so forked or
spawned search workers inherit it — each subprocess re-arms the schedule
with fresh per-site counters (:func:`reload_from_env`), which keeps
worker-side schedules deterministic regardless of what the parent fired
before forking.

The zero-overhead contract: with no plan installed, every injection site
is a single module-global ``None`` check — no schedule lookup, no lock,
no counter — and results, counters and on-disk bytes are identical to a
build without the harness.  The regression suite pins this.

>>> plan = FaultPlan({"rpc.send": [1]})
>>> plan.should_fire("rpc.send")  # invocation 0: survives
False
>>> plan.should_fire("rpc.send")  # invocation 1: scripted failure
True
>>> plan.fired
1
"""

from __future__ import annotations

import json
import os
import random
import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

#: Every named injection site compiled into the production code paths.
SITES = (
    "worker.exit",
    "rpc.send",
    "rpc.recv",
    "sharedmemo.publish",
    "cache.append",
    "server.search",
)

#: Environment variable carrying the installed plan's JSON form into
#: subprocesses (the process backend's forked/spawned workers).
ENV_PLAN = "PARTIR_FAULT_PLAN"


class FaultPlan:
    """A seeded, serializable schedule of exact failure injections.

    ``schedule`` maps a site name to the 0-based *invocation indices* at
    which that site fails in this process: ``{"worker.exit": [2]}`` kills
    a worker on its third evaluation.  Indices are per-process — every
    process (parent, forked worker, spawned worker) counts its own site
    invocations from zero, so a schedule is deterministic wherever it
    lands.  Instances are thread-safe: scheduler threads and server
    connection handlers may probe sites concurrently.
    """

    def __init__(self, schedule: Dict[str, Iterable[int]],
                 name: str = "scripted"):
        for site in schedule:
            if site not in SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; expected one of {SITES}"
                )
        self.schedule: Dict[str, Tuple[int, ...]] = {
            site: tuple(sorted(int(i) for i in indices))
            for site, indices in schedule.items()
        }
        self.name = name
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {site: 0 for site in SITES}
        self._fired = 0

    @classmethod
    def seeded(cls, seed: int, rate: float = 0.05,
               sites: Sequence[str] = SITES,
               horizon: int = 64) -> "FaultPlan":
        """A pseudo-random schedule, deterministic in ``seed``: each of
        the first ``horizon`` invocations of each listed site fails with
        probability ``rate``.  The chaos benchmark's fixed-fault-rate
        plans come from here."""
        rng = random.Random(seed)
        schedule = {
            site: [i for i in range(horizon) if rng.random() < rate]
            for site in sites
        }
        return cls({site: idxs for site, idxs in schedule.items() if idxs},
                   name=f"seeded:{seed}@{rate}")

    def should_fire(self, site: str) -> bool:
        """Count one invocation of ``site``; True when the schedule says
        this invocation fails."""
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            hit = index in self.schedule.get(site, ())
            if hit:
                self._fired += 1
            return hit

    @property
    def fired(self) -> int:
        """Faults this plan has injected in this process so far."""
        with self._lock:
            return self._fired

    @property
    def invocations(self) -> Dict[str, int]:
        """Per-site invocation counts observed so far (a copy)."""
        with self._lock:
            return dict(self._counts)

    # -- serialization (the subprocess-inheritance wire form) ---------------

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name,
            "schedule": {site: list(idxs)
                         for site, idxs in self.schedule.items()},
        }, sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        payload = json.loads(blob)
        return cls(payload.get("schedule", {}),
                   name=payload.get("name", "scripted"))

    def __repr__(self) -> str:
        return f"FaultPlan({self.name!r}, {self.schedule!r})"


# -- process-wide installation -----------------------------------------------------

_PLAN: Optional[FaultPlan] = None
#: Has this process already decided whether ``PARTIR_FAULT_PLAN`` is set?
#: Once true, the no-plan fast path never touches the environment again.
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()


def install(plan: FaultPlan, export_env: bool = True) -> FaultPlan:
    """Install ``plan`` process-wide (and, by default, export it through
    ``PARTIR_FAULT_PLAN`` so subprocesses forked/spawned from here
    inherit it with fresh counters)."""
    global _PLAN, _ENV_CHECKED
    with _INSTALL_LOCK:
        _PLAN = plan
        _ENV_CHECKED = True
        if export_env:
            os.environ[ENV_PLAN] = plan.to_json()
    return plan


def uninstall() -> None:
    """Remove the installed plan and its environment export (idempotent)."""
    global _PLAN, _ENV_CHECKED
    with _INSTALL_LOCK:
        _PLAN = None
        _ENV_CHECKED = True
        os.environ.pop(ENV_PLAN, None)


def reload_from_env() -> Optional[FaultPlan]:
    """Re-arm this process's plan from ``PARTIR_FAULT_PLAN`` with fresh
    counters (or clear it when the variable is unset).

    Subprocess initializers call this: a forked worker otherwise inherits
    the parent's plan *object* mid-count, making worker schedules depend
    on how much the parent fired before the fork."""
    global _PLAN, _ENV_CHECKED
    with _INSTALL_LOCK:
        raw = os.environ.get(ENV_PLAN)
        _ENV_CHECKED = True
        if not raw:
            _PLAN = None
            return None
        try:
            _PLAN = FaultPlan.from_json(raw)
        except (ValueError, TypeError):
            _PLAN = None
        return _PLAN


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, picking up ``PARTIR_FAULT_PLAN`` lazily on the
    first call in a process that never called :func:`install` (spawned
    workers land here)."""
    plan = _PLAN
    if plan is None and not _ENV_CHECKED:
        return reload_from_env()
    return plan


def should_fire(site: str) -> bool:
    """The injection-site probe compiled into production code paths.

    The no-plan fast path is a single global check — the zero-overhead
    contract the regression suite pins."""
    plan = _PLAN
    if plan is None:
        if _ENV_CHECKED:
            return False
        plan = reload_from_env()
        if plan is None:
            return False
    return plan.should_fire(site)


def fired_count() -> int:
    """Faults injected in this process so far (0 with no plan installed).
    ``mcts_search`` snapshots this around a search to report
    ``SearchResult.faults_injected``."""
    plan = _PLAN
    return plan.fired if plan is not None else 0
