"""IR verifier: structural SSA checks plus re-running type inference.

Passes call this after rewriting to catch bugs early, mirroring MLIR's
per-dialect verification that the paper leans on for compartmentalised
testing.
"""

from __future__ import annotations

from typing import Set

from repro.errors import VerificationError
from repro.ir import opdefs
from repro.ir.function import Function, Module
from repro.ir.values import Value


def verify_function(function: Function) -> None:
    defined: Set[Value] = set(function.params)
    for op in function.ops:
        for operand in op.operands:
            if operand not in defined:
                raise VerificationError(
                    f"in @{function.name}: op {op.opcode} uses value "
                    f"{operand!r} before definition"
                )
        if not opdefs.is_registered(op.opcode):
            raise VerificationError(f"unknown opcode {op.opcode}")
        opdef = opdefs.get(op.opcode)
        expected = opdef.infer([v.type for v in op.operands], op.attrs, op.regions)
        actual = [r.type for r in op.results]
        if list(expected) != actual:
            raise VerificationError(
                f"in @{function.name}: op {op.opcode} result types {actual} "
                f"disagree with inference {expected}"
            )
        for region in op.regions:
            verify_function(region)
        defined.update(op.results)
    for result in function.results:
        if result not in defined:
            raise VerificationError(
                f"@{function.name} returns undefined value {result!r}"
            )


def verify_module(module: Module) -> None:
    for function in module.functions.values():
        verify_function(function)
