"""The array IR: a StableHLO-like SSA tensor IR with a numpy interpreter.

Importing this package registers all built-in ops.
"""

from repro.ir import dtypes
from repro.ir.types import TensorType, scalar
from repro.ir.values import Operation, Value
from repro.ir.function import Function, FunctionBuilder, Module
from repro.ir import opdefs

# Op registrations (import side effects).
from repro.ir import ops_elementwise  # noqa: F401
from repro.ir import ops_linalg  # noqa: F401
from repro.ir import ops_nn  # noqa: F401

from repro.ir.interpreter import evaluate_function, evaluate_module
from repro.ir.printer import print_function, print_module
from repro.ir.tagpoints import AUTO_TAG_PREFIX, TagPoint, is_auto_tag, tag_points
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "AUTO_TAG_PREFIX",
    "TagPoint",
    "is_auto_tag",
    "tag_points",
    "dtypes",
    "TensorType",
    "scalar",
    "Operation",
    "Value",
    "Function",
    "FunctionBuilder",
    "Module",
    "opdefs",
    "evaluate_function",
    "evaluate_module",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
]
