"""First-class *tag points*: addressable interior program points.

A ``tag`` op is a named identity marker (registered in
:mod:`repro.ir.ops_elementwise`): it evaluates to its operand in the
interpreter, carries a zero-FLOP cost, aliases its operand in the
live-range analysis, and is dropped from device-local code at lowering
whenever its operand and result agree on a sharding.  Tags exist purely to
give *interior* values stable, structural names — the paper's Section 8
model-internal annotations, and (since the tracer auto-emits them at
matmul/scan/reduce outputs) the decision variables of the widened
automatic-partitioning action space: treating interior program points as
first-class decision variables is exactly the CFG constraint-search
framing of the related work in PAPERS.md.

Two kinds of tags coexist:

* **manual tags** — ``repro.trace.ops.tag(x, "name")``, placed by model
  authors so schedules can target the value by name
  (:func:`repro.core.actions.find_tagged`), and
* **auto tags** — emitted by the tracer after every matmul-like, reduce
  and scan op (attrs carry ``auto=True``; names are ``auto/<opcode>/<n>``
  and never collide with manual names).

Both kinds are *tag points*: :func:`tag_points` enumerates them in the
canonical pre-order walk, and that walk index is a tag point's portable
name — two processes holding structurally-identical functions (e.g. a
search worker that received the function over pickle) agree on every tag
point's index, exactly like value indices in
:meth:`repro.core.sharding.ShardingEnv.portable_state`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.ir.values import Operation, Value

#: Prefix of tracer-generated tag names (guaranteed to never collide with
#: manual ``ops.tag`` names, which may not start with it).
AUTO_TAG_PREFIX = "auto/"


def is_auto_tag(op: Operation) -> bool:
    """Was this ``tag`` op emitted by the tracer (vs placed manually)?"""
    return op.opcode == "tag" and bool(op.attrs.get("auto"))


@dataclasses.dataclass(frozen=True)
class TagPoint:
    """One addressable interior program point.

    Attributes:
        index: position in the function's canonical tag-point enumeration
            (pre-order walk over all ``tag`` ops, regions included) — the
            portable, process-independent name used in search actions.
        name: the tag's ``name`` attr.
        op: the ``tag`` op itself.
        value: the tagged value (the tag op's result).
        root: the underlying computed value the marker chain annotates —
            the tag's operand, walked through directly-chained tags.  Two
            tag points with the same root are propagation-identical
            (stacked markers over one computation); points over different
            results of one multi-result op (scan carries) have distinct
            roots.
        source: the op producing the tagged computation (``root``'s
            producer), or ``None`` when the tag marks a function
            parameter.  ``SumTagged`` actions tile a contracting factor
            of this op.
        auto: whether the tracer emitted the tag.
    """

    index: int
    name: str
    op: Operation
    value: Value
    root: Value
    source: Optional[Operation]
    auto: bool

    @property
    def op_kind(self) -> str:
        """Opcode of the computation this point annotates (``"param"``
        when the tag marks a function parameter) — the structural feature
        the search's action-group keys and the learned rollout prior
        (:mod:`repro.auto.prior`) generalize over: two tag points over
        different matmuls are the same *kind* of decision surface even
        when their shapes and shardings differ."""
        return self.source.opcode if self.source is not None else "param"


def _root_value(tag_op: Operation) -> Value:
    value = tag_op.operands[0]
    while value.producer is not None and value.producer.opcode == "tag":
        value = value.producer.operands[0]
    return value


def tag_points(function) -> List[TagPoint]:
    """Every tag point of ``function``, in canonical pre-order walk order.

    The list is cached on the function (functions are structurally frozen
    after construction — the same contract the propagation index relies
    on), so repeated enumeration during candidate generation and action
    replay is O(1).
    """
    cached = getattr(function, "_tag_points", None)
    if cached is not None:
        return cached
    points: List[TagPoint] = []
    for op in function.walk():
        if op.opcode != "tag":
            continue
        root = _root_value(op)
        points.append(TagPoint(
            index=len(points),
            name=str(op.attrs.get("name", "")),
            op=op,
            value=op.results[0],
            root=root,
            source=root.producer,
            auto=is_auto_tag(op),
        ))
    function._tag_points = points
    return points
