"""A numpy reference interpreter for the array IR.

Used as the semantic ground truth: partitioned programs executed on the
simulated mesh must agree with this interpreter on the unpartitioned module.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.ir import opdefs
from repro.ir.function import Function, Module
from repro.ir.values import Operation, Value


def evaluate_function(function: Function, args: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Evaluate ``function`` on concrete numpy inputs, returning its results."""
    if len(args) != len(function.params):
        raise ExecutionError(
            f"{function.name} expects {len(function.params)} args, got {len(args)}"
        )
    env: Dict[Value, np.ndarray] = {}
    for param, arg in zip(function.params, args):
        arg = np.asarray(arg, dtype=param.type.dtype.np_dtype)
        if arg.shape != param.type.shape:
            raise ExecutionError(
                f"argument for {param!r} has shape {arg.shape}, "
                f"expected {param.type.shape}"
            )
        env[param] = arg
    for op in function.ops:
        _eval_op(op, env)
    return [env[r] for r in function.results]


#: Safety cap for ``while_loop`` evaluation: a predicate that never turns
#: false is a bug in the traced program, not a reason to hang the tests.
MAX_WHILE_ITERATIONS = 1_000_000


def _eval_op(op: Operation, env: Dict[Value, np.ndarray]) -> None:
    operands = [env[v] for v in op.operands]
    if op.opcode in opdefs.LOOP_OPS:
        results = _eval_loop(op, operands)
    else:
        opdef = opdefs.get(op.opcode)
        if opdef.eval is None:
            raise ExecutionError(f"op {op.opcode} has no evaluator")
        results = opdef.eval(operands, op.attrs)
    if len(results) != len(op.results):
        raise ExecutionError(
            f"{op.opcode} evaluator returned {len(results)} results, "
            f"expected {len(op.results)}"
        )
    for value, array in zip(op.results, results):
        array = np.asarray(array)
        if array.shape != value.type.shape:
            raise ExecutionError(
                f"{op.opcode} produced shape {array.shape}, "
                f"expected {value.type.shape}"
            )
        env[value] = array.astype(value.type.dtype.np_dtype, copy=False)


def _eval_loop(op: Operation, operands: List[np.ndarray]) -> List[np.ndarray]:
    """Evaluate any :data:`repro.ir.opdefs.LOOP_OPS` op.

    ``scan`` and ``fori_loop`` share the counted-loop path (the frontend
    folds ``fori_loop``'s lower bound into the body, so the step index
    always counts from 0).  ``while_loop`` runs its predicate region for
    real each iteration — ``trip_count`` is only a pricing hint.
    """
    body = op.regions[0]
    num_carries = op.attrs.get("num_carries", len(operands))
    carries = list(operands[:num_carries])
    invariants = list(operands[num_carries:])
    index_dtype = body.params[0].type.dtype.np_dtype
    if op.opcode == "while_loop":
        cond = op.regions[1]
        step = 0
        while True:
            index = np.asarray(step, dtype=index_dtype)
            (pred,) = evaluate_function(cond, [index] + carries)
            if not bool(pred):
                break
            if step >= MAX_WHILE_ITERATIONS:
                raise ExecutionError(
                    f"while_loop exceeded {MAX_WHILE_ITERATIONS} iterations"
                )
            carries = evaluate_function(body, [index] + carries + invariants)
            step += 1
        return carries
    for i in range(op.attrs["trip_count"]):
        index = np.asarray(i, dtype=index_dtype)
        carries = evaluate_function(body, [index] + carries + invariants)
    return carries


def evaluate_module(module: Module, args: Sequence[np.ndarray]) -> List[np.ndarray]:
    return evaluate_function(module.main, args)
