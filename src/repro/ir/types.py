"""Tensor types for the array IR."""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from repro.ir import dtypes


@dataclasses.dataclass(frozen=True)
class TensorType:
    """A ranked tensor type ``tensor<d0 x d1 x ... x dtype>``.

    Shapes are static (the paper partitions statically-shaped StableHLO).
    A rank-0 tensor models a scalar.
    """

    shape: Tuple[int, ...]
    dtype: dtypes.DType = dtypes.f32

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        for d in self.shape:
            if d < 0:
                raise ValueError(f"negative dimension in shape {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype.nbytes

    def with_shape(self, shape) -> "TensorType":
        return TensorType(tuple(shape), self.dtype)

    def __repr__(self) -> str:
        if not self.shape:
            return f"tensor<{self.dtype}>"
        dims = "x".join(str(d) for d in self.shape)
        return f"tensor<{dims}x{self.dtype}>"


def scalar(dtype: dtypes.DType = dtypes.f32) -> TensorType:
    """The rank-0 tensor type with the given dtype."""
    return TensorType((), dtype)
