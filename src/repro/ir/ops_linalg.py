"""Structural and linear-algebra ops: dot_general, transpose, reshape,
broadcast, reductions, concatenation, (dynamic) slicing, gather/scatter."""

from __future__ import annotations

import math
import string

import numpy as np

from repro.errors import TypeInferenceError
from repro.ir import dtypes
from repro.ir.opdefs import OpDef, register
from repro.ir.types import TensorType


# ---------------------------------------------------------------------------
# dot_general
# ---------------------------------------------------------------------------

def dot_general_dims(lhs_rank, rhs_rank, attrs):
    """Return (lhs_batch, rhs_batch, lhs_contract, rhs_contract,
    lhs_free, rhs_free) dimension index tuples."""
    lhs_batch = tuple(attrs.get("lhs_batch", ()))
    rhs_batch = tuple(attrs.get("rhs_batch", ()))
    lhs_contract = tuple(attrs["lhs_contract"])
    rhs_contract = tuple(attrs["rhs_contract"])
    lhs_free = tuple(
        d for d in range(lhs_rank) if d not in lhs_batch + lhs_contract
    )
    rhs_free = tuple(
        d for d in range(rhs_rank) if d not in rhs_batch + rhs_contract
    )
    return lhs_batch, rhs_batch, lhs_contract, rhs_contract, lhs_free, rhs_free


def _infer_dot_general(types, attrs, regions):
    lhs, rhs = types
    (lb, rb, lc, rc, lf, rf) = dot_general_dims(lhs.rank, rhs.rank, attrs)
    if len(lb) != len(rb) or len(lc) != len(rc):
        raise TypeInferenceError("dot_general dimension arity mismatch")
    for dl, dr in zip(lb, rb):
        if lhs.shape[dl] != rhs.shape[dr]:
            raise TypeInferenceError(
                f"dot_general batch dims differ: {lhs.shape[dl]} vs {rhs.shape[dr]}"
            )
    for dl, dr in zip(lc, rc):
        if lhs.shape[dl] != rhs.shape[dr]:
            raise TypeInferenceError(
                f"dot_general contracting dims differ: "
                f"{lhs.shape[dl]} vs {rhs.shape[dr]}"
            )
    out_shape = (
        tuple(lhs.shape[d] for d in lb)
        + tuple(lhs.shape[d] for d in lf)
        + tuple(rhs.shape[d] for d in rf)
    )
    return [TensorType(out_shape, lhs.dtype)]


def dot_general_einsum_spec(lhs_rank, rhs_rank, attrs):
    """Build an einsum subscript string implementing this dot_general."""
    (lb, rb, lc, rc, lf, rf) = dot_general_dims(lhs_rank, rhs_rank, attrs)
    letters = iter(string.ascii_letters)
    lhs_sub = [None] * lhs_rank
    rhs_sub = [None] * rhs_rank
    out_sub = []
    for dl, dr in zip(lb, rb):
        c = next(letters)
        lhs_sub[dl] = c
        rhs_sub[dr] = c
        out_sub.append(c)
    for dl, dr in zip(lc, rc):
        c = next(letters)
        lhs_sub[dl] = c
        rhs_sub[dr] = c
    for d in lf:
        c = next(letters)
        lhs_sub[d] = c
        out_sub.append(c)
    for d in rf:
        c = next(letters)
        rhs_sub[d] = c
        out_sub.append(c)
    return "".join(lhs_sub) + "," + "".join(rhs_sub) + "->" + "".join(out_sub)


def _eval_dot_general(arrays, attrs):
    lhs, rhs = arrays
    spec = dot_general_einsum_spec(lhs.ndim, rhs.ndim, attrs)
    return [np.einsum(spec, lhs, rhs)]


def _flops_dot_general(types, attrs):
    lhs, rhs = types
    (lb, rb, lc, rc, lf, rf) = dot_general_dims(lhs.rank, rhs.rank, attrs)
    batch = math.prod(lhs.shape[d] for d in lb)
    m = math.prod(lhs.shape[d] for d in lf)
    k = math.prod(lhs.shape[d] for d in lc)
    n = math.prod(rhs.shape[d] for d in rf)
    return 2.0 * batch * m * n * k


register(
    OpDef(
        "dot_general",
        _infer_dot_general,
        eval=_eval_dot_general,
        flops=_flops_dot_general,
        linear=True,
    )
)


# ---------------------------------------------------------------------------
# transpose / reshape / broadcast
# ---------------------------------------------------------------------------

def _infer_transpose(types, attrs, regions):
    (t,) = types
    perm = tuple(attrs["permutation"])
    if sorted(perm) != list(range(t.rank)):
        raise TypeInferenceError(f"bad transpose permutation {perm}")
    return [t.with_shape(tuple(t.shape[d] for d in perm))]


register(
    OpDef(
        "transpose",
        _infer_transpose,
        eval=lambda arrays, attrs: [
            np.transpose(arrays[0], attrs["permutation"])
        ],
        flops=lambda types, attrs: 0.0,
        linear=True,
    )
)


def _infer_reshape(types, attrs, regions):
    (t,) = types
    new_shape = tuple(attrs["new_shape"])
    if math.prod(new_shape) != t.num_elements:
        raise TypeInferenceError(
            f"reshape {t.shape} -> {new_shape} changes element count"
        )
    return [t.with_shape(new_shape)]


register(
    OpDef(
        "reshape",
        _infer_reshape,
        eval=lambda arrays, attrs: [
            arrays[0].reshape(tuple(attrs["new_shape"]))
        ],
        flops=lambda types, attrs: 0.0,
        linear=True,
    )
)


def _infer_broadcast(types, attrs, regions):
    (t,) = types
    shape = tuple(attrs["shape"])
    bdims = tuple(attrs["broadcast_dimensions"])
    if len(bdims) != t.rank:
        raise TypeInferenceError("broadcast_dimensions arity != operand rank")
    for operand_dim, out_dim in enumerate(bdims):
        if t.shape[operand_dim] not in (1, shape[out_dim]):
            raise TypeInferenceError(
                f"broadcast_in_dim: operand dim {operand_dim} of size "
                f"{t.shape[operand_dim]} cannot map to output size {shape[out_dim]}"
            )
    return [t.with_shape(shape)]


def _eval_broadcast(arrays, attrs):
    x = arrays[0]
    shape = tuple(attrs["shape"])
    bdims = tuple(attrs["broadcast_dimensions"])
    expanded = [1] * len(shape)
    for operand_dim, out_dim in enumerate(bdims):
        expanded[out_dim] = x.shape[operand_dim]
    return [np.broadcast_to(x.reshape(expanded), shape).copy()]


register(
    OpDef(
        "broadcast_in_dim",
        _infer_broadcast,
        eval=_eval_broadcast,
        flops=lambda types, attrs: 0.0,
        linear=True,
    )
)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def _infer_reduce(types, attrs, regions):
    (t,) = types
    dims = tuple(sorted(attrs["dims"]))
    for d in dims:
        if not 0 <= d < t.rank:
            raise TypeInferenceError(f"reduce dim {d} out of range")
    out_shape = tuple(s for i, s in enumerate(t.shape) if i not in dims)
    return [t.with_shape(out_shape)]


def _flops_reduce(types, attrs):
    return float(types[0].num_elements)


register(
    OpDef(
        "reduce_sum",
        _infer_reduce,
        eval=lambda arrays, attrs: [
            np.sum(arrays[0], axis=tuple(attrs["dims"]))
        ],
        flops=_flops_reduce,
        linear=True,
    )
)

register(
    OpDef(
        "reduce_max",
        _infer_reduce,
        eval=lambda arrays, attrs: [
            np.max(arrays[0], axis=tuple(attrs["dims"]))
        ],
        flops=_flops_reduce,
    )
)


# ---------------------------------------------------------------------------
# concatenate / slicing
# ---------------------------------------------------------------------------

def _infer_concatenate(types, attrs, regions):
    dim = attrs["dim"]
    first = types[0]
    total = 0
    for t in types:
        if t.rank != first.rank:
            raise TypeInferenceError("concatenate rank mismatch")
        for d in range(first.rank):
            if d != dim and t.shape[d] != first.shape[d]:
                raise TypeInferenceError("concatenate non-concat dims differ")
        total += t.shape[dim]
    out_shape = list(first.shape)
    out_shape[dim] = total
    return [first.with_shape(tuple(out_shape))]


register(
    OpDef(
        "concatenate",
        _infer_concatenate,
        eval=lambda arrays, attrs: [
            np.concatenate(list(arrays), axis=attrs["dim"])
        ],
        flops=lambda types, attrs: 0.0,
        linear=True,
    )
)


def _infer_slice(types, attrs, regions):
    (t,) = types
    starts = tuple(attrs["starts"])
    limits = tuple(attrs["limits"])
    strides = tuple(attrs.get("strides") or (1,) * t.rank)
    if not (len(starts) == len(limits) == len(strides) == t.rank):
        raise TypeInferenceError("slice attr arity mismatch")
    out = []
    for s, l, st, size in zip(starts, limits, strides, t.shape):
        if not (0 <= s <= l <= size):
            raise TypeInferenceError(
                f"slice bounds [{s}:{l}] invalid for dim of size {size}"
            )
        out.append(-(-(l - s) // st))
    return [t.with_shape(tuple(out))]


def _eval_slice(arrays, attrs):
    x = arrays[0]
    starts = attrs["starts"]
    limits = attrs["limits"]
    strides = attrs.get("strides") or (1,) * x.ndim
    index = tuple(slice(s, l, st) for s, l, st in zip(starts, limits, strides))
    return [x[index].copy()]


register(
    OpDef(
        "slice",
        _infer_slice,
        eval=_eval_slice,
        flops=lambda types, attrs: 0.0,
        linear=True,
    )
)


def _infer_dynamic_slice_in_dim(types, attrs, regions):
    operand, index = types
    if index.shape != ():
        raise TypeInferenceError("dynamic_slice index must be scalar")
    dim, size = attrs["dim"], attrs["size"]
    if size > operand.shape[dim]:
        raise TypeInferenceError("dynamic_slice size exceeds dim")
    out_shape = list(operand.shape)
    out_shape[dim] = size
    return [operand.with_shape(tuple(out_shape))]


def _eval_dynamic_slice_in_dim(arrays, attrs):
    x, index = arrays
    dim, size = attrs["dim"], attrs["size"]
    start = int(np.clip(index, 0, x.shape[dim] - size))
    slicer = [slice(None)] * x.ndim
    slicer[dim] = slice(start, start + size)
    return [x[tuple(slicer)].copy()]


register(
    OpDef(
        "dynamic_slice_in_dim",
        _infer_dynamic_slice_in_dim,
        eval=_eval_dynamic_slice_in_dim,
        flops=lambda types, attrs: 0.0,
        linear=True,
    )
)


def _infer_dynamic_update_slice_in_dim(types, attrs, regions):
    operand, update, index = types
    if index.shape != ():
        raise TypeInferenceError("dynamic_update_slice index must be scalar")
    dim = attrs["dim"]
    if update.rank != operand.rank:
        raise TypeInferenceError("dynamic_update_slice rank mismatch")
    for d in range(operand.rank):
        if d != dim and update.shape[d] != operand.shape[d]:
            raise TypeInferenceError("dynamic_update_slice shape mismatch")
    return [operand]


def _eval_dynamic_update_slice_in_dim(arrays, attrs):
    x, update, index = arrays
    dim = attrs["dim"]
    start = int(np.clip(index, 0, x.shape[dim] - update.shape[dim]))
    out = x.copy()
    slicer = [slice(None)] * x.ndim
    slicer[dim] = slice(start, start + update.shape[dim])
    out[tuple(slicer)] = update
    return [out]


register(
    OpDef(
        "dynamic_update_slice_in_dim",
        _infer_dynamic_update_slice_in_dim,
        eval=_eval_dynamic_update_slice_in_dim,
        flops=lambda types, attrs: 0.0,
    )
)


# ---------------------------------------------------------------------------
# gather (take) / scatter_add
# ---------------------------------------------------------------------------

def _infer_take(types, attrs, regions):
    operand, indices = types
    if operand.rank < 1:
        raise TypeInferenceError("take operand must have rank >= 1")
    if indices.dtype not in (dtypes.i32, dtypes.i64):
        raise TypeInferenceError("take indices must be integer")
    out_shape = indices.shape + operand.shape[1:]
    return [operand.with_shape(out_shape)]


register(
    OpDef(
        "take",
        _infer_take,
        eval=lambda arrays, attrs: [np.take(arrays[0], arrays[1], axis=0)],
        flops=lambda types, attrs: 0.0,
    )
)


def _infer_scatter_add(types, attrs, regions):
    operand, indices, updates = types
    if indices.rank != 1:
        raise TypeInferenceError("scatter_add indices must be rank 1")
    expected = indices.shape + operand.shape[1:]
    if updates.shape != expected:
        raise TypeInferenceError(
            f"scatter_add updates shape {updates.shape} != {expected}"
        )
    return [operand]


def _eval_scatter_add(arrays, attrs):
    operand, indices, updates = arrays
    out = operand.copy()
    np.add.at(out, indices, updates)
    return [out]


register(
    OpDef(
        "scatter_add",
        _infer_scatter_add,
        eval=_eval_scatter_add,
        flops=lambda types, attrs: float(types[2].num_elements),
    )
)


# ---------------------------------------------------------------------------
# pad (zero padding; the VJP of slice)
# ---------------------------------------------------------------------------

def _infer_pad(types, attrs, regions):
    (t,) = types
    low = tuple(attrs["low"])
    high = tuple(attrs["high"])
    if len(low) != t.rank or len(high) != t.rank:
        raise TypeInferenceError("pad attr arity mismatch")
    out = tuple(s + lo + hi for s, lo, hi in zip(t.shape, low, high))
    return [t.with_shape(out)]


register(
    OpDef(
        "pad",
        _infer_pad,
        eval=lambda arrays, attrs: [
            np.pad(arrays[0], tuple(zip(attrs["low"], attrs["high"])))
        ],
        flops=lambda types, attrs: 0.0,
        linear=True,
    )
)


# ---------------------------------------------------------------------------
# stop_gradient (identity; blocks the backward sweep)
# ---------------------------------------------------------------------------

register(
    OpDef(
        "stop_gradient",
        lambda types, attrs, regions: [types[0]],
        eval=lambda arrays, attrs: [arrays[0]],
        flops=lambda types, attrs: 0.0,
        elementwise=True,
        linear=True,
    )
)
