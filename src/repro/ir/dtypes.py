"""Element dtypes for the array IR.

The IR supports a small set of dtypes, mirroring what the PartIR paper's
benchmarks need (float32/bfloat16-as-float16 compute, int32 indices, bool
predicates).  Each dtype knows its numpy equivalent and its byte width, which
the cost model uses for memory and communication estimates.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class DType:
    """An element type.

    Attributes:
        name: short IR name, e.g. ``"f32"``.
        np_dtype: the numpy dtype used by the reference interpreter.
        nbytes: bytes per element (used by the cost model).
        is_float: whether this is a floating-point type.
    """

    name: str
    np_dtype: np.dtype
    nbytes: int
    is_float: bool

    def __repr__(self) -> str:
        return self.name


f32 = DType("f32", np.dtype(np.float32), 4, True)
f16 = DType("f16", np.dtype(np.float16), 2, True)
f64 = DType("f64", np.dtype(np.float64), 8, True)
i32 = DType("i32", np.dtype(np.int32), 4, False)
i64 = DType("i64", np.dtype(np.int64), 8, False)
bool_ = DType("i1", np.dtype(np.bool_), 1, False)

_ALL = {d.name: d for d in (f32, f16, f64, i32, i64, bool_)}
_FROM_NUMPY = {d.np_dtype: d for d in (f32, f16, f64, i32, i64, bool_)}


def from_name(name: str) -> DType:
    """Look up a dtype by its IR name (e.g. ``"f32"``)."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(f"unknown dtype name {name!r}; known: {sorted(_ALL)}")


def from_numpy(np_dtype) -> DType:
    """Map a numpy dtype (or anything np.dtype accepts) to an IR dtype."""
    key = np.dtype(np_dtype)
    try:
        return _FROM_NUMPY[key]
    except KeyError:
        raise KeyError(f"unsupported numpy dtype {np_dtype!r}")
