"""SSA values and operations for the array IR.

The IR is a flat SSA list of operations per function (like StableHLO inside a
``func.func``).  A :class:`Value` is either a function parameter or the result
of an :class:`Operation`.  Operations may carry nested *regions* (used by the
``scan`` loop op), represented as :class:`repro.ir.function.Function` objects.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.ir.types import TensorType

_value_counter = itertools.count()


class Value:
    """An SSA value with a static tensor type.

    Attributes:
        type: the value's :class:`TensorType`.
        producer: the defining :class:`Operation`, or ``None`` for function
            parameters.
        index: result index within the producer (0 for parameters).
        name: optional human-readable name used by the printer.
    """

    __slots__ = ("type", "producer", "index", "name", "uid")

    def __init__(
        self,
        type: TensorType,
        producer: Optional["Operation"] = None,
        index: int = 0,
        name: Optional[str] = None,
    ):
        self.type = type
        self.producer = producer
        self.index = index
        self.name = name
        self.uid = next(_value_counter)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.type.shape

    @property
    def dtype(self):
        return self.type.dtype

    @property
    def is_param(self) -> bool:
        return self.producer is None

    def __repr__(self) -> str:
        label = self.name or f"v{self.uid}"
        return f"%{label}: {self.type}"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other) -> bool:
        return self is other


class Operation:
    """A single IR operation.

    Attributes:
        opcode: registered op name, e.g. ``"dot_general"``.
        operands: SSA operands.
        attrs: static attributes (shapes, dimension numbers, ...).
        results: result values (producer back-links set on construction).
        regions: nested function bodies (``scan`` has one).
    """

    # _sharding_rule caches repro.core.rules.rule_for(op): the rule is a
    # pure function of the op's opcode/attrs/types, all frozen after
    # construction, and propagation + lowering ask for it millions of times.
    __slots__ = ("opcode", "operands", "attrs", "results", "regions",
                 "_sharding_rule")

    def __init__(
        self,
        opcode: str,
        operands: Sequence[Value],
        attrs: Optional[Dict[str, Any]] = None,
        result_types: Sequence[TensorType] = (),
        regions: Optional[List[Any]] = None,
    ):
        self.opcode = opcode
        self.operands = list(operands)
        self.attrs = dict(attrs or {})
        self.regions = list(regions or [])
        self.results = [
            Value(t, producer=self, index=i) for i, t in enumerate(result_types)
        ]

    def __getstate__(self):
        # The cached sharding rule is derived state: recomputed on demand,
        # and not worth shipping to search workers.
        return (self.opcode, self.operands, self.attrs, self.results,
                self.regions)

    def __setstate__(self, state):
        (self.opcode, self.operands, self.attrs, self.results,
         self.regions) = state

    @property
    def result(self) -> Value:
        """The unique result (raises if the op has several)."""
        if len(self.results) != 1:
            raise ValueError(
                f"op {self.opcode} has {len(self.results)} results, expected 1"
            )
        return self.results[0]

    def __repr__(self) -> str:
        outs = ", ".join(repr(r) for r in self.results)
        ins = ", ".join(f"%{o.name or 'v%d' % o.uid}" for o in self.operands)
        return f"{outs} = {self.opcode}({ins})"
