"""Neural-net structured ops: 2-D convolution (and its gradient primitives),
nearest-neighbour up/down sampling, and the ``scan`` loop used by the IT32
inference serving loop."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TypeInferenceError
from repro.ir import dtypes
from repro.ir.opdefs import OpDef, register
from repro.ir.types import TensorType


def conv_out_size(size: int, k: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - k) // stride + 1


# ---------------------------------------------------------------------------
# conv2d: x[N, C, H, W] * k[O, C, kh, kw] -> y[N, O, OH, OW]
# ---------------------------------------------------------------------------

def _infer_conv2d(types, attrs, regions):
    x, k = types
    if x.rank != 4 or k.rank != 4:
        raise TypeInferenceError("conv2d expects NCHW input and OCHW kernel")
    n, c, h, w = x.shape
    o, kc, kh, kw = k.shape
    if c != kc:
        raise TypeInferenceError(f"conv2d channel mismatch: {c} vs {kc}")
    stride = attrs.get("stride", 1)
    pad = attrs.get("pad", 0)
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    if oh <= 0 or ow <= 0:
        raise TypeInferenceError("conv2d output would be empty")
    return [x.with_shape((n, o, oh, ow))]


def _pad_hw(x, pad):
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))


def _eval_conv2d(arrays, attrs):
    x, k = arrays
    stride = attrs.get("stride", 1)
    pad = attrs.get("pad", 0)
    o, c, kh, kw = k.shape
    xp = _pad_hw(x, pad)
    n, _, hp, wp = xp.shape
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    # windows: [N, C, OH, OW, kh, kw]
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    y = np.einsum("nchwij,ocij->nohw", windows, k)
    assert y.shape == (n, o, oh, ow)
    return [y.astype(x.dtype)]


def _flops_conv2d(types, attrs):
    x, k = types
    n = x.shape[0]
    o, c, kh, kw = k.shape
    stride = attrs.get("stride", 1)
    pad = attrs.get("pad", 0)
    oh = conv_out_size(x.shape[2], kh, stride, pad)
    ow = conv_out_size(x.shape[3], kw, stride, pad)
    return 2.0 * n * o * oh * ow * c * kh * kw


register(OpDef("conv2d", _infer_conv2d, eval=_eval_conv2d,
               flops=_flops_conv2d, linear=True))


# ---------------------------------------------------------------------------
# conv2d_input_grad: dy[N, O, OH, OW] * k[O, C, kh, kw] -> dx[N, C, H, W]
# ---------------------------------------------------------------------------

def _infer_conv2d_input_grad(types, attrs, regions):
    dy, k = types
    n = dy.shape[0]
    o, c, kh, kw = k.shape
    h, w = attrs["input_hw"]
    return [dy.with_shape((n, c, h, w))]


def _eval_conv2d_input_grad(arrays, attrs):
    dy, k = arrays
    stride = attrs.get("stride", 1)
    pad = attrs.get("pad", 0)
    h, w = attrs["input_hw"]
    n, o, oh, ow = dy.shape
    _, c, kh, kw = k.shape
    dxp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=dy.dtype)
    # dx[n, c, oh*s + i, ow*s + j] += dy[n, o, oh, ow] * k[o, c, i, j]
    for i in range(kh):
        for j in range(kw):
            contrib = np.einsum("nohw,oc->nchw", dy, k[:, :, i, j])
            dxp[:, :, i: i + oh * stride: stride,
                j: j + ow * stride: stride] += contrib
    if pad:
        return [dxp[:, :, pad:-pad, pad:-pad].copy()]
    return [dxp]


register(
    OpDef(
        "conv2d_input_grad",
        _infer_conv2d_input_grad,
        eval=_eval_conv2d_input_grad,
        flops=_flops_conv2d,
        linear=True,
    )
)


# ---------------------------------------------------------------------------
# conv2d_kernel_grad: x[N, C, H, W] * dy[N, O, OH, OW] -> dk[O, C, kh, kw]
# ---------------------------------------------------------------------------

def _infer_conv2d_kernel_grad(types, attrs, regions):
    x, dy = types
    kh, kw = attrs["kernel_hw"]
    o = dy.shape[1]
    c = x.shape[1]
    return [x.with_shape((o, c, kh, kw))]


def _eval_conv2d_kernel_grad(arrays, attrs):
    x, dy = arrays
    stride = attrs.get("stride", 1)
    pad = attrs.get("pad", 0)
    kh, kw = attrs["kernel_hw"]
    xp = _pad_hw(x, pad)
    n, o, oh, ow = dy.shape
    c = x.shape[1]
    dk = np.zeros((o, c, kh, kw), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            patch = xp[:, :, i: i + oh * stride: stride,
                       j: j + ow * stride: stride]
            dk[:, :, i, j] = np.einsum("nchw,nohw->oc", patch, dy)
    return [dk]


def _flops_conv2d_kernel_grad(types, attrs):
    x, dy = types
    kh, kw = attrs["kernel_hw"]
    n, o, oh, ow = dy.shape
    c = x.shape[1]
    return 2.0 * n * o * oh * ow * c * kh * kw


register(
    OpDef(
        "conv2d_kernel_grad",
        _infer_conv2d_kernel_grad,
        eval=_eval_conv2d_kernel_grad,
        flops=_flops_conv2d_kernel_grad,
    )
)


# ---------------------------------------------------------------------------
# upsample2d (nearest) / downsample2d_sum (its VJP)
# ---------------------------------------------------------------------------

def _infer_upsample2d(types, attrs, regions):
    (x,) = types
    f = attrs["factor"]
    n, c, h, w = x.shape
    return [x.with_shape((n, c, h * f, w * f))]


def _eval_upsample2d(arrays, attrs):
    f = attrs["factor"]
    return [np.repeat(np.repeat(arrays[0], f, axis=2), f, axis=3)]


register(OpDef("upsample2d", _infer_upsample2d, eval=_eval_upsample2d,
               flops=lambda types, attrs: 0.0, linear=True))


def _infer_downsample2d_sum(types, attrs, regions):
    (x,) = types
    f = attrs["factor"]
    n, c, h, w = x.shape
    if h % f or w % f:
        raise TypeInferenceError("downsample2d_sum: size not divisible")
    return [x.with_shape((n, c, h // f, w // f))]


def _eval_downsample2d_sum(arrays, attrs):
    x = arrays[0]
    f = attrs["factor"]
    n, c, h, w = x.shape
    return [x.reshape(n, c, h // f, f, w // f, f).sum(axis=(3, 5))]


register(
    OpDef(
        "downsample2d_sum",
        _infer_downsample2d_sum,
        eval=_eval_downsample2d_sum,
        flops=lambda types, attrs: float(types[0].num_elements),
        linear=True,
    )
)


# ---------------------------------------------------------------------------
# scan: a counted loop region. Operands are the initial carries; the body
# function takes (iteration_index, *carries) and returns the next carries.
# The op's results are the final carries. This models the XLA while-loop used
# by the IT32 serving loop; the collective counters multiply per-iteration
# collectives by trip_count, like the paper's Table 3 does.
# ---------------------------------------------------------------------------

def _check_loop_body(name, types, attrs, body):
    num_carries = attrs.get("num_carries", len(types))
    if len(body.params) != len(types) + 1:
        raise TypeInferenceError(
            f"{name} body takes {len(body.params)} params, expected "
            f"{len(types) + 1} (index + carries + invariants)"
        )
    if body.params[0].type.shape != ():
        raise TypeInferenceError(
            f"{name} body's first param must be the scalar index"
        )
    for operand_type, param in zip(types, body.params[1:]):
        if param.type != operand_type:
            raise TypeInferenceError(
                f"{name} operand type {operand_type} != body param {param.type}"
            )
    carry_types = list(types[:num_carries])
    if len(body.results) != num_carries:
        raise TypeInferenceError(f"{name} body must return one value per carry")
    for carry_type, result in zip(carry_types, body.results):
        if result.type != carry_type:
            raise TypeInferenceError(
                f"{name} carry type {carry_type} != body result {result.type}"
            )
    return carry_types


def _infer_scan(types, attrs, regions):
    if len(regions) != 1:
        raise TypeInferenceError("scan needs exactly one body region")
    return _check_loop_body("scan", types, attrs, regions[0])


def _infer_fori_loop(types, attrs, regions):
    if len(regions) != 1:
        raise TypeInferenceError("fori_loop needs exactly one body region")
    return _check_loop_body("fori_loop", types, attrs, regions[0])


def _infer_while_loop(types, attrs, regions):
    if len(regions) != 2:
        raise TypeInferenceError(
            "while_loop needs exactly two regions (body, cond)"
        )
    carry_types = _check_loop_body("while_loop", types, attrs, regions[0])
    cond = regions[1]
    if len(cond.params) != len(carry_types) + 1:
        raise TypeInferenceError(
            f"while_loop cond takes {len(cond.params)} params, expected "
            f"{len(carry_types) + 1} (index + carries)"
        )
    if len(cond.results) != 1 or cond.results[0].type.shape != ():
        raise TypeInferenceError(
            "while_loop cond must return one scalar predicate"
        )
    return carry_types


register(OpDef("scan", _infer_scan, eval=None, has_regions=True,
               flops=lambda types, attrs: 0.0))

# fori_loop is scan-shaped: the frontend folds the lower bound into the
# traced body, so its execution and pricing paths are shared with scan.
register(OpDef("fori_loop", _infer_fori_loop, eval=None, has_regions=True,
               flops=lambda types, attrs: 0.0))

# while_loop carries a second (predicate) region.  The interpreter runs the
# predicate for real; every static consumer (cost model, collective
# counters) uses the ``trip_count`` pricing hint and ignores the predicate's
# own (scalar, negligible) cost.
register(OpDef("while_loop", _infer_while_loop, eval=None, has_regions=True,
               flops=lambda types, attrs: 0.0))
