"""Elementwise, constant and predicate ops.

Binary elementwise ops require *identical* operand shapes; the tracer inserts
explicit ``broadcast_in_dim`` ops (as StableHLO does), which keeps the
tile-mapping rules for elementwise ops trivially uniform.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TypeInferenceError
from repro.ir import dtypes
from repro.ir.opdefs import OpDef, register
from repro.ir.types import TensorType


def _same_shape(types, opcode):
    first = types[0]
    for t in types[1:]:
        if t.shape != first.shape:
            raise TypeInferenceError(
                f"{opcode}: operand shapes differ: "
                f"{[tt.shape for tt in types]}"
            )


def _elementwise_flops(operand_types, attrs):
    return float(operand_types[0].num_elements) if operand_types else 0.0


def _register_unary(name, fn, float_only=True):
    def infer(types, attrs, regions):
        return [types[0]]

    register(
        OpDef(
            name,
            infer,
            eval=lambda arrays, attrs: [fn(arrays[0])],
            flops=_elementwise_flops,
            elementwise=True,
            linear=name == "neg",
        )
    )


def _register_binary(name, fn, linear=False):
    def infer(types, attrs, regions):
        _same_shape(types, name)
        return [types[0]]

    register(
        OpDef(
            name,
            infer,
            eval=lambda arrays, attrs: [fn(arrays[0], arrays[1])],
            flops=_elementwise_flops,
            elementwise=True,
            linear=linear,
        )
    )


_register_unary("neg", np.negative)
_register_unary("exp", np.exp)
_register_unary("log", np.log)
_register_unary("tanh", np.tanh)
_register_unary("sqrt", np.sqrt)
_register_unary("rsqrt", lambda x: 1.0 / np.sqrt(x))
_register_unary("abs", np.abs)
_register_unary("sign", np.sign)
_register_unary("sin", np.sin)
_register_unary("cos", np.cos)
_register_unary("logistic", lambda x: 1.0 / (1.0 + np.exp(-x)))

# add/sub are linear: a pending partial-sum over a mesh axis commutes with
# them (sum_a(x) + sum_a(y) == sum_a(x + y)), which is what lets gradient
# accumulation defer its all_reduce (Section 6).
_register_binary("add", np.add, linear=True)
_register_binary("sub", np.subtract, linear=True)
_register_binary("mul", np.multiply)
_register_binary("div", np.divide)
_register_binary("pow", np.power)
_register_binary("maximum", np.maximum)
_register_binary("minimum", np.minimum)


def _infer_constant(types, attrs, regions):
    value = attrs["value"]
    if not isinstance(value, np.ndarray):
        raise TypeInferenceError("constant attr 'value' must be an ndarray")
    return [TensorType(value.shape, dtypes.from_numpy(value.dtype))]


register(
    OpDef(
        "constant",
        _infer_constant,
        eval=lambda arrays, attrs: [attrs["value"]],
        flops=lambda types, attrs: 0.0,
    )
)


def _infer_iota(types, attrs, regions):
    shape = tuple(attrs["shape"])
    dim = attrs["dim"]
    if not 0 <= dim < len(shape):
        raise TypeInferenceError(f"iota dim {dim} out of range for {shape}")
    return [TensorType(shape, attrs.get("dtype", dtypes.i32))]


def _eval_iota(arrays, attrs):
    shape = tuple(attrs["shape"])
    dim = attrs["dim"]
    dtype = attrs.get("dtype", dtypes.i32)
    out = np.arange(shape[dim], dtype=dtype.np_dtype)
    reshape = [1] * len(shape)
    reshape[dim] = shape[dim]
    return [np.broadcast_to(out.reshape(reshape), shape).copy()]


register(OpDef("iota", _infer_iota, eval=_eval_iota,
               flops=lambda types, attrs: 0.0))


_COMPARE_FNS = {
    "LT": np.less,
    "LE": np.less_equal,
    "GT": np.greater,
    "GE": np.greater_equal,
    "EQ": np.equal,
    "NE": np.not_equal,
}


def _infer_compare(types, attrs, regions):
    _same_shape(types, "compare")
    if attrs["direction"] not in _COMPARE_FNS:
        raise TypeInferenceError(f"bad compare direction {attrs['direction']}")
    return [TensorType(types[0].shape, dtypes.bool_)]


register(
    OpDef(
        "compare",
        _infer_compare,
        eval=lambda arrays, attrs: [
            _COMPARE_FNS[attrs["direction"]](arrays[0], arrays[1])
        ],
        flops=_elementwise_flops,
        elementwise=True,
    )
)


def _infer_select(types, attrs, regions):
    pred, on_true, on_false = types
    if pred.dtype is not dtypes.bool_:
        raise TypeInferenceError("select predicate must be i1")
    _same_shape(types, "select")
    if on_true.dtype is not on_false.dtype:
        raise TypeInferenceError("select branch dtypes differ")
    return [on_true]


register(
    OpDef(
        "select",
        _infer_select,
        eval=lambda arrays, attrs: [np.where(arrays[0], arrays[1], arrays[2])],
        flops=_elementwise_flops,
        elementwise=True,
    )
)


def _infer_convert(types, attrs, regions):
    return [TensorType(types[0].shape, attrs["dtype"])]


register(
    OpDef(
        "convert",
        _infer_convert,
        eval=lambda arrays, attrs: [
            arrays[0].astype(attrs["dtype"].np_dtype)
        ],
        flops=_elementwise_flops,
        elementwise=True,
        linear=True,
    )
)


# tag: a named identity used for model-internal annotations (Section 8).
register(
    OpDef(
        "tag",
        lambda types, attrs, regions: [types[0]],
        eval=lambda arrays, attrs: [arrays[0]],
        flops=lambda types, attrs: 0.0,
        elementwise=True,
        linear=True,
    )
)
