"""Textual printer for modules, in an MLIR-flavoured syntax.

The printer is for humans (debugging, the paper's listings); there is no
parser — modules are built programmatically or by tracing.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ir.function import Function, Module
from repro.ir.values import Operation, Value


class _Namer:
    def __init__(self):
        self._names: Dict[Value, str] = {}
        self._next = 0

    def name(self, value: Value) -> str:
        if value not in self._names:
            if value.name:
                base = value.name
                candidate = base
                suffix = 0
                while candidate in self._names.values():
                    suffix += 1
                    candidate = f"{base}_{suffix}"
                self._names[value] = candidate
            else:
                self._names[value] = f"{self._next}"
                self._next += 1
        return self._names[value]


def _format_attr(key, value) -> str:
    if isinstance(value, np.ndarray):
        if value.size <= 4:
            return f"{key}=dense<{value.tolist()}>"
        return f"{key}=dense<...x{value.dtype}>"
    return f"{key}={value}"


def print_function(function: Function, indent: str = "") -> str:
    namer = _Namer()
    lines = []
    params = ", ".join(
        f"%{namer.name(p)}: {p.type}" for p in function.params
    )
    lines.append(f"{indent}func @{function.name}({params}) {{")
    body_indent = indent + "  "
    for op in function.ops:
        lines.append(_print_op(op, namer, body_indent))
    results = ", ".join(f"%{namer.name(r)}" for r in function.results)
    types = ", ".join(str(r.type) for r in function.results)
    lines.append(f"{body_indent}return {results} : {types}")
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def _print_op(op: Operation, namer: _Namer, indent: str) -> str:
    outs = ", ".join(f"%{namer.name(r)}" for r in op.results)
    ins = ", ".join(f"%{namer.name(o)}" for o in op.operands)
    attrs = ", ".join(
        _format_attr(k, v) for k, v in sorted(op.attrs.items())
    )
    attr_str = f" {{{attrs}}}" if attrs else ""
    types = ", ".join(str(r.type) for r in op.results)
    line = f"{indent}{outs} = {op.opcode}({ins}){attr_str} : {types}"
    if op.regions:
        region_lines = [line + " {"]
        for region in op.regions:
            region_lines.append(print_function(region, indent + "  "))
        region_lines.append(indent + "}")
        return "\n".join(region_lines)
    return line


def print_module(module: Module) -> str:
    return "\n\n".join(
        print_function(f) for _, f in sorted(module.functions.items())
    )
