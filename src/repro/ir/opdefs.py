"""The operation registry.

Every opcode registers an :class:`OpDef` carrying:

* ``infer``: result-type inference from operand types + attrs (+ regions),
* ``eval``: numpy evaluation used by the reference interpreter and the
  simulated-mesh executor (region ops like ``scan`` are interpreted by the
  interpreter itself and may leave ``eval`` unset),
* ``flops``: an optional FLOP estimate used by the performance simulator.

Sharding rules (the PartIR tile-mapping registry) and autodiff VJP rules are
registered in separate tables (``repro.core.rules`` and
``repro.trace.autodiff``) so that the base IR stays independent of the
partitioner and the tracer.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.ir.types import TensorType

InferFn = Callable[[Sequence[TensorType], dict, list], List[TensorType]]
EvalFn = Callable[[Sequence], List]
FlopsFn = Callable[[Sequence[TensorType], dict], float]


@dataclasses.dataclass
class OpDef:
    name: str
    infer: InferFn
    eval: Optional[Callable] = None
    flops: Optional[FlopsFn] = None
    # Pure elementwise ops map each output element from the same index of
    # every operand; used to auto-generate sharding rules and VJP plumbing.
    elementwise: bool = False
    # Linear ops commute with summation over a pending mesh axis: the
    # propagation pass may defer an all_reduce through them (Section 5/6).
    linear: bool = False
    # Does this op have nested regions (e.g. scan)?
    has_regions: bool = False


#: The counted/conditional loop family.  All three share the scan calling
#: convention — region 0 is the body ``(step, *carries, *invariants) ->
#: carries``, attrs carry ``trip_count``/``num_carries`` — so every consumer
#: that walks, prices, propagates through or executes a loop region handles
#: them with one code path.  ``while_loop`` adds a second region (the
#: predicate ``(step, *carries) -> pred``); its ``trip_count`` attr is the
#: *pricing hint* used by the cost model and collective counters.
LOOP_OPS = frozenset({"scan", "fori_loop", "while_loop"})

_REGISTRY: Dict[str, OpDef] = {}


def register(opdef: OpDef) -> OpDef:
    if opdef.name in _REGISTRY:
        raise ValueError(f"op {opdef.name!r} registered twice")
    _REGISTRY[opdef.name] = opdef
    return opdef


def get(name: str) -> OpDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown op {name!r}; known: {sorted(_REGISTRY)}")


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def all_ops() -> Dict[str, OpDef]:
    return dict(_REGISTRY)
