"""Functions, modules and the builder used by the tracer and the passes."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import TypeInferenceError
from repro.ir import opdefs
from repro.ir.types import TensorType
from repro.ir.values import Operation, Value


class Function:
    """A function: parameters, a flat op list, and result values.

    Also used for op *regions* (e.g. the body of ``scan``), in which case
    ``name`` is conventionally ``"body"``.
    """

    def __init__(self, name: str):
        self.name = name
        self.params: List[Value] = []
        self.ops: List[Operation] = []
        self.results: List[Value] = []
        # Optional metadata: maps user-facing input names to param indices.
        self.input_names: List[str] = []
        self.output_names: List[str] = []

    def add_param(self, type: TensorType, name: Optional[str] = None) -> Value:
        value = Value(type, producer=None, index=len(self.params), name=name)
        self.params.append(value)
        self.input_names.append(name or f"arg{len(self.params) - 1}")
        return value

    def all_values(self) -> Iterable[Value]:
        """All values defined in this function (params then op results)."""
        yield from self.params
        for op in self.ops:
            yield from op.results

    def walk(self) -> Iterable[Operation]:
        """All ops, including ops inside regions (pre-order)."""
        for op in self.ops:
            yield op
            for region in op.regions:
                yield from region.walk()

    def uses(self) -> Dict[Value, List[Operation]]:
        """Map each value to the list of ops that consume it (top level)."""
        result: Dict[Value, List[Operation]] = {}
        for op in self.ops:
            for operand in op.operands:
                result.setdefault(operand, []).append(op)
        return result

    def num_ops(self, recursive: bool = True) -> int:
        return sum(1 for _ in self.walk()) if recursive else len(self.ops)

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.params)} params, {len(self.ops)} ops>"


class Module:
    """A collection of functions; ``main`` is the entry point."""

    def __init__(self, main: Optional[Function] = None):
        self.functions: Dict[str, Function] = {}
        if main is not None:
            self.functions["main"] = main

    @property
    def main(self) -> Function:
        return self.functions["main"]

    def __repr__(self) -> str:
        return f"<Module: {sorted(self.functions)}>"


class FunctionBuilder:
    """Builds a :class:`Function` by emitting ops with inferred result types."""

    def __init__(self, name: str = "main"):
        self.function = Function(name)

    def param(self, shape, dtype=None, name: Optional[str] = None) -> Value:
        from repro.ir import dtypes

        type = TensorType(tuple(shape), dtype or dtypes.f32)
        return self.function.add_param(type, name)

    def emit(
        self,
        opcode: str,
        operands: Sequence[Value],
        attrs: Optional[dict] = None,
        regions: Optional[list] = None,
    ) -> Operation:
        """Emit one op; result types come from the op's registered inference."""
        opdef = opdefs.get(opcode)
        attrs = dict(attrs or {})
        operand_types = [v.type for v in operands]
        try:
            result_types = opdef.infer(operand_types, attrs, regions or [])
        except TypeInferenceError:
            raise
        except Exception as exc:  # surface shape bugs with context
            raise TypeInferenceError(
                f"type inference failed for {opcode} with operand types "
                f"{operand_types} and attrs {attrs}: {exc}"
            ) from exc
        op = Operation(opcode, operands, attrs, result_types, regions)
        self.function.ops.append(op)
        return op

    def emit1(self, opcode, operands, attrs=None, regions=None) -> Value:
        """Emit one op and return its unique result value."""
        return self.emit(opcode, operands, attrs, regions).result

    def ret(self, *values: Value, names: Optional[Sequence[str]] = None) -> Function:
        self.function.results = list(values)
        if names is not None:
            self.function.output_names = list(names)
        else:
            self.function.output_names = [f"out{i}" for i in range(len(values))]
        return self.function
