#!/usr/bin/env python
"""Offline link check for the repo's markdown docs.

Verifies that every relative markdown link/image target
(``[text](path)``) and every backtick-quoted repo path that looks like a
file reference actually exists on disk.  External (``http(s)://``,
``mailto:``) links are skipped — CI must not depend on the network.

Usage: ``python tools/check_links.py README.md docs/ARCHITECTURE.md``
Exits nonzero listing the broken references.
"""

from __future__ import annotations

import os
import re
import sys

#: [text](target) — markdown links and images.
_MD_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: `path/like.this` — backtick references that name a file with an
#: extension or a directory ending in '/'.
_TICK_PATH = re.compile(r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+/?)`")

#: Backticked paths with these extensions must exist (code/docs/data the
#: prose points the reader at); anything else in backticks is prose.
_CHECKED_EXTENSIONS = {".py", ".md", ".yml", ".yaml", ".json", ".txt"}

#: Repo-relative paths documented as *outputs* (created at runtime).
_RUNTIME_ARTIFACTS = re.compile(r"BENCH_.*\.json$|.*\.partir-cache.*")


def check_file(doc_path: str, repo_root: str) -> list:
    base = os.path.dirname(os.path.abspath(doc_path))
    broken = []
    with open(doc_path) as handle:
        text = handle.read()
    targets = []
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.append((target.split("#")[0], base))
    for match in _TICK_PATH.finditer(text):
        target = match.group(1)
        ext = os.path.splitext(target)[1]
        if not target.endswith("/") and ext not in _CHECKED_EXTENSIONS:
            continue
        if _RUNTIME_ARTIFACTS.search(target):
            continue
        # Backticked paths are repo-root-relative by convention.
        targets.append((target, repo_root))
    for target, root in targets:
        if not target:
            continue
        # Backticked paths may be repo-root-relative or package-relative
        # (docs/ARCHITECTURE.md quotes paths "relative to src/repro/").
        candidates = [
            os.path.join(root, target),
            os.path.join(repo_root, "src", target),
            os.path.join(repo_root, "src", "repro", target),
        ]
        if not any(os.path.exists(c) for c in candidates):
            broken.append((doc_path, target))
    return broken


def main(argv) -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    docs = argv or ["README.md", "docs/ARCHITECTURE.md"]
    broken = []
    for doc in docs:
        broken.extend(check_file(doc, repo_root))
    for doc, target in broken:
        print(f"{doc}: broken reference -> {target}", file=sys.stderr)
    if not broken:
        print(f"link check ok: {', '.join(docs)}")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
